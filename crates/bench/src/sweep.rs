//! Persistent work-stealing sweep engine for the experiment harness.
//!
//! Every study in this crate evaluates a large grid of independent
//! *cells* — `(inset × x × sample)` for Figure 2, `(variant × sample)`
//! for the ablation, `(point × sample)` for the tightness study. The
//! original harness spawned and joined one scope of OS threads *per
//! point*, which serializes points behind a barrier and pays thread
//! startup ~50 times per run.
//!
//! [`SweepPool`] replaces that: a pool of long-lived workers created
//! once per process, executing whole coordinate spaces as single
//! chunked work queues. The initial cell range is split evenly across
//! workers; a worker that drains its own range steals the back half of
//! the richest remaining range, so there is no barrier anywhere between
//! cells — the last cell of one point and the first cell of the next
//! run concurrently.
//!
//! Determinism: cells are pure functions of their index (each derives
//! its own RNG stream from the coordinate), and results land in a
//! per-cell slot, so the returned vector is identical regardless of
//! worker count or steal interleaving. `tests/sweep_determinism.rs`
//! pins this across the whole multi-inset Figure 2 run.
//!
//! The queue is an array of packed `(start, end)` ranges, one
//! `AtomicU64` per worker: the owner pops from the front with a CAS,
//! thieves CAS the victim's back half away. The packed value fully
//! describes the range, so the classic ABA concern is benign: a
//! successful CAS always transfers exactly the cells the slot currently
//! holds. Cells are never duplicated (every insertion into a slot is
//! paired with a CAS-removal from another) and never lost (a worker
//! executes everything it popped or stole before exiting, and the pool
//! waits for *all* workers to finish each sweep).

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Sweeps shorter than this never print progress (keeps tests and quick
/// runs silent).
const PROGRESS_AFTER: Duration = Duration::from_millis(2500);
/// Interval between progress lines once reporting has started.
const PROGRESS_EVERY: Duration = Duration::from_millis(1000);

/// One cell range `[start, end)` packed into an `AtomicU64`
/// (`start` in the high half, `end` in the low half).
fn pack(start: u32, end: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(end)
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Type-erased sweep job: workers only need "run cell `i` (as worker
/// `w`)".
trait SweepJob: Send + Sync {
    fn run_cell(&self, index: usize, worker: usize);
}

/// Concrete job: the cell closure plus one result slot per cell.
struct Job<T, F> {
    f: F,
    slots: Vec<OnceLock<T>>,
    /// Cells not yet executed (progress reporting only; completion is
    /// detected via [`Shared::active`]).
    remaining: AtomicUsize,
}

impl<T, F> SweepJob for Job<T, F>
where
    T: Send + Sync,
    F: Fn(usize, usize) -> T + Send + Sync,
{
    fn run_cell(&self, index: usize, worker: usize) {
        let value = (self.f)(index, worker);
        self.slots[index]
            .set(value)
            .unwrap_or_else(|_| panic!("cell {index} executed twice"));
        self.remaining.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Worker-visible pool state.
struct Shared {
    state: Mutex<State>,
    /// Signals workers that a new sweep was published (or shutdown).
    work_cv: Condvar,
    /// Signals the submitter that a worker finished its part.
    done_cv: Condvar,
    /// One packed work range per worker.
    ranges: Vec<AtomicU64>,
    /// Workers still participating in the current sweep. The submitter
    /// only reads results once this hits zero, which guarantees every
    /// cell has executed and no worker still holds the job `Arc`.
    active: AtomicUsize,
}

struct State {
    /// Bumped once per sweep; workers participate in each generation
    /// exactly once.
    generation: u64,
    job: Option<Arc<dyn SweepJob>>,
    shutdown: bool,
}

/// A persistent pool of sweep workers. Create one per process (thread
/// spawn happens here and only here), then [`SweepPool::run`] any
/// number of sweeps through it.
///
/// # Examples
///
/// ```
/// use rtpool_bench::sweep::SweepPool;
///
/// let pool = SweepPool::new(4);
/// let squares = pool.run(10, "squares", |i| i * i);
/// assert_eq!(squares[7], 49);
/// ```
pub struct SweepPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Serializes sweeps: one job in flight at a time.
    submit: Mutex<()>,
}

impl SweepPool {
    /// Creates a pool with `threads` long-lived workers (clamped to at
    /// least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                generation: 0,
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            ranges: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            active: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sweep-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawning sweep worker")
            })
            .collect();
        SweepPool {
            shared,
            workers,
            submit: Mutex::new(()),
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Executes `f` for every cell index in `0..cells` across the pool
    /// and returns the results in index order.
    ///
    /// The output is independent of the worker count and of steal
    /// interleaving: cell `i`'s result always lands in slot `i`. Long
    /// sweeps (> ~2.5 s) report throughput and ETA for `label` on
    /// stderr; short ones are silent.
    ///
    /// # Panics
    ///
    /// Panics if `cells` exceeds `u32::MAX` (the packed-range queue
    /// limit) or if the closure panics in a worker.
    pub fn run<T, F>(&self, cells: usize, label: &str, f: F) -> Vec<T>
    where
        T: Send + Sync + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        self.run_indexed(cells, label, move |i, _worker| f(i))
    }

    /// Like [`SweepPool::run`], but also passes the executing worker's
    /// index (`0..threads()`) to the closure. Cell `i` may run on any
    /// worker (stealing moves cells between ranges), so the worker index
    /// must not influence the *result* of a deterministic sweep — it
    /// exists for per-worker bookkeeping such as trace lanes or
    /// shard-local metrics, where "which lane" is allowed to vary run to
    /// run while the recorded content stays valid.
    ///
    /// # Panics
    ///
    /// Panics if `cells` exceeds `u32::MAX` (the packed-range queue
    /// limit) or if the closure panics in a worker.
    pub fn run_indexed<T, F>(&self, cells: usize, label: &str, f: F) -> Vec<T>
    where
        T: Send + Sync + 'static,
        F: Fn(usize, usize) -> T + Send + Sync + 'static,
    {
        if cells == 0 {
            return Vec::new();
        }
        let n = u32::try_from(cells).expect("cell count fits the packed range queue");

        let _sweep = self.submit.lock().expect("submit lock not poisoned");
        let job = Arc::new(Job {
            f,
            slots: (0..cells).map(|_| OnceLock::new()).collect(),
            remaining: AtomicUsize::new(cells),
        });

        // Publish the work ranges before the job itself: a worker that
        // sees the new generation must already see its range.
        let threads = self.shared.ranges.len();
        let chunk = cells.div_ceil(threads) as u32;
        for (w, range) in self.shared.ranges.iter().enumerate() {
            let start = (w as u32).saturating_mul(chunk).min(n);
            let end = start.saturating_add(chunk).min(n);
            range.store(pack(start, end), Ordering::Release);
        }
        self.shared.active.store(threads, Ordering::Release);
        {
            let mut st = self.shared.state.lock().expect("pool state not poisoned");
            st.generation += 1;
            st.job = Some(Arc::clone(&job) as Arc<dyn SweepJob>);
            self.shared.work_cv.notify_all();
        }

        // Wait for every worker to finish, narrating progress on slow
        // sweeps.
        let started = Instant::now();
        let mut last_line = started;
        {
            let mut st = self.shared.state.lock().expect("pool state not poisoned");
            while self.shared.active.load(Ordering::Acquire) > 0 {
                let (guard, _timeout) = self
                    .shared
                    .done_cv
                    .wait_timeout(st, Duration::from_millis(200))
                    .expect("pool state not poisoned");
                st = guard;
                let elapsed = started.elapsed();
                if elapsed > PROGRESS_AFTER && last_line.elapsed() > PROGRESS_EVERY {
                    last_line = Instant::now();
                    let left = job.remaining.load(Ordering::Relaxed);
                    let done = cells - left;
                    let rate = done as f64 / elapsed.as_secs_f64();
                    let eta = if rate > 0.0 {
                        left as f64 / rate
                    } else {
                        f64::INFINITY
                    };
                    let mut err = std::io::stderr().lock();
                    let _ = writeln!(
                        err,
                        "  [{label}] {done}/{cells} cells ({rate:.1} cells/s, ETA {eta:.0}s)"
                    );
                }
            }
            // Drop the pool's reference so the submitter's Arc is unique.
            st.job = None;
        }

        let job = Arc::try_unwrap(job)
            .unwrap_or_else(|_| unreachable!("workers release the job before finishing"));
        job.slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(|| panic!("cell {i} was never executed"))
            })
            .collect()
    }
}

impl Drop for SweepPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state not poisoned");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    let mut seen_generation = 0u64;
    loop {
        // Wait for a sweep we have not participated in yet (the job
        // stays published until *every* worker has, so none is missed).
        let job = {
            let mut st = shared.state.lock().expect("pool state not poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen_generation {
                    if let Some(job) = &st.job {
                        seen_generation = st.generation;
                        break Arc::clone(job);
                    }
                }
                st = shared.work_cv.wait(st).expect("pool state not poisoned");
            }
        };

        loop {
            if let Some(cell) = pop_front(&shared.ranges[me]) {
                job.run_cell(cell as usize, me);
            } else if !steal(&shared.ranges, me) {
                break;
            }
        }

        // Release the job before announcing completion: once `active`
        // hits zero the submitter unwraps its Arc.
        drop(job);
        if shared.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _st = shared.state.lock().expect("pool state not poisoned");
            shared.done_cv.notify_all();
        }
    }
}

/// Claims the front cell of `range`, if any.
fn pop_front(range: &AtomicU64) -> Option<u32> {
    let mut cur = range.load(Ordering::Acquire);
    loop {
        let (start, end) = unpack(cur);
        if start >= end {
            return None;
        }
        match range.compare_exchange_weak(
            cur,
            pack(start + 1, end),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some(start),
            Err(now) => cur = now,
        }
    }
}

/// Steals the back half of the richest other range into `ranges[me]`.
/// Returns `false` when every other range is empty.
fn steal(ranges: &[AtomicU64], me: usize) -> bool {
    loop {
        let mut best: Option<(usize, u64, u32)> = None;
        for (w, range) in ranges.iter().enumerate() {
            if w == me {
                continue;
            }
            let cur = range.load(Ordering::Acquire);
            let (start, end) = unpack(cur);
            let len = end.saturating_sub(start);
            if len > 0 && best.is_none_or(|(_, _, b)| len > b) {
                best = Some((w, cur, len));
            }
        }
        let Some((victim, cur, len)) = best else {
            return false;
        };
        let (start, end) = unpack(cur);
        let mid = end - len.div_ceil(2);
        if ranges[victim]
            .compare_exchange(cur, pack(start, mid), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // Our own range is empty (we only steal after draining it),
            // so this store cannot clobber live cells.
            ranges[me].store(pack(mid, end), Ordering::Release);
            return true;
        }
        // Lost the race; rescan.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_cells_in_order() {
        let pool = SweepPool::new(3);
        let out = pool.run(100, "t", |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_cells_is_empty() {
        let pool = SweepPool::new(2);
        let out: Vec<usize> = pool.run(0, "t", |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = SweepPool::new(1);
        let out = pool.run(17, "t", |i| i + 1);
        assert_eq!(out.len(), 17);
        assert_eq!(out[16], 17);
    }

    #[test]
    fn pool_is_reusable_across_sweeps() {
        let pool = SweepPool::new(4);
        for round in 0..20 {
            let out = pool.run(round * 7 + 1, "t", move |i| i + round);
            assert_eq!(out.len(), round * 7 + 1);
            assert_eq!(out[0], round);
        }
    }

    #[test]
    fn results_independent_of_worker_count() {
        let serial: Vec<usize> = SweepPool::new(1).run(523, "t", |i| i.wrapping_mul(0x9e37));
        let wide: Vec<usize> = SweepPool::new(8).run(523, "t", |i| i.wrapping_mul(0x9e37));
        assert_eq!(serial, wide);
    }

    #[test]
    fn uneven_partitions_cover_every_cell() {
        // cells < workers leaves most initial ranges empty; stealing and
        // completion must still work.
        let pool = SweepPool::new(8);
        let out = pool.run(3, "t", |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn run_indexed_reports_valid_worker_ids() {
        let pool = SweepPool::new(3);
        let out = pool.run_indexed(64, "t", |i, w| (i, w));
        for (slot, (i, w)) in out.iter().enumerate() {
            assert_eq!(slot, *i);
            assert!(*w < 3, "worker id {w} out of range");
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (s, e) in [(0, 0), (0, 1), (7, 1000), (u32::MAX - 1, u32::MAX)] {
            assert_eq!(unpack(pack(s, e)), (s, e));
        }
    }
}
