//! Per-request supervision: panic isolation, retry, rescue.
//!
//! Every request attempt runs inside [`std::panic::catch_unwind`], so a
//! crashing analysis worker never unwinds into the sweep pool (which
//! would strand the pool's completion accounting). A panicked attempt
//! is retried under the configured
//! [`RecoveryPolicy`](rtpool_exec::RecoveryPolicy) — the same policy
//! type, with the same `max_retries`/`backoff_delay` semantics, that
//! governs the executor's worker recovery. When the retry budget is
//! exhausted the supervisor makes one final attempt on a freshly
//! spawned *rescue thread* (the service-layer analogue of the
//! executor's epoch-bound rescue workers: a clean stack, isolated from
//! any state the panicking attempts may have wedged) before giving up
//! and answering an `error` verdict. Whatever happens, **every request
//! gets exactly one response** — supervision converts crashes into
//! verdicts, never into silence.
//!
//! Service-layer fault injection ([`FaultPlan::service_faults`]) is
//! applied here, keyed by the request's arrival sequence number and the
//! attempt index, so chaos runs are reproducible.

use std::panic::{self, AssertUnwindSafe};
use std::thread;

use rtpool_core::{CancelToken, Task, TaskSet};
use rtpool_exec::{FaultPlan, RecoveryPolicy};
use rtpool_graph::NodeId;

use super::interner::{InternError, Interner, MemoOutcome};
use super::ladder::{run_ladder, LadderOutcome};
use super::protocol::{
    parse_edit_script, EditScript, EditScriptOp, LadderLevel, Request, RequestBody, VerdictKind,
};

/// Something the supervisor did while serving a request, for the trace
/// and the metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceEvent {
    /// An attempt panicked and was caught.
    WorkerPanicked,
    /// A panicked attempt was retried under the policy.
    Retried,
    /// The final attempt ran on a fresh rescue thread.
    RescueAttempt,
    /// A poisoned cache entry was observed and evicted.
    PoisonedEntry,
    /// An injected shard stall delayed the attempt.
    ShardStalled,
    /// An injected slowdown delayed the attempt.
    SlowRequest,
    /// An `edit` request was answered from a delta-patched cache entry:
    /// the base set was resident, so the patched set carried the base's
    /// `DerivedCache` over instead of rebuilding it from scratch.
    CacheDeltaHit,
}

impl ServiceEvent {
    /// Trace `Recovery` label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ServiceEvent::WorkerPanicked => "serve_worker_panicked",
            ServiceEvent::Retried => "serve_retried",
            ServiceEvent::RescueAttempt => "serve_rescue_attempt",
            ServiceEvent::PoisonedEntry => "serve_poisoned_entry",
            ServiceEvent::ShardStalled => "serve_shard_stalled",
            ServiceEvent::SlowRequest => "serve_slow_request",
            ServiceEvent::CacheDeltaHit => "serve_cache_delta_hit",
        }
    }
}

/// The supervised outcome of one request.
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// Final verdict class (`Admit`/`Reject`/`Error`).
    pub verdict: VerdictKind,
    /// Ladder rung, when analysis ran.
    pub level: Option<LadderLevel>,
    /// Whether the answer is degraded.
    pub degraded: bool,
    /// Content hash, when the workload resolved.
    pub hash: Option<u64>,
    /// Reason / detail text.
    pub detail: String,
    /// Attempts consumed (1 = clean first try).
    pub attempts: usize,
    /// Supervision events, in order.
    pub events: Vec<ServiceEvent>,
}

/// What one attempt produced internally.
enum AttemptError {
    /// Caught panic, with its message.
    Panicked(String),
    /// Poisoned cache entry (retryable).
    Poisoned,
    /// Terminal resolution failure (parse error, unknown hash).
    Terminal(String),
}

/// The per-request supervisor. Stateless between requests; share one
/// per server.
pub struct Supervisor {
    policy: RecoveryPolicy,
    faults: FaultPlan,
}

impl Supervisor {
    /// Creates a supervisor applying `policy` to panicked attempts and
    /// injecting `faults`.
    #[must_use]
    pub fn new(policy: RecoveryPolicy, faults: FaultPlan) -> Self {
        Supervisor { policy, faults }
    }

    /// Serves one request to a verdict. `seq` is the server's arrival
    /// sequence number (the fault plan's request key); `token` carries
    /// the request's deadline budget.
    #[must_use]
    pub fn execute(
        &self,
        seq: u64,
        request: &Request,
        interner: &Interner,
        token: &CancelToken,
    ) -> ServiceOutcome {
        let mut events = Vec::new();
        let max_retries = self.policy.max_retries();
        let mut attempt = 0usize;
        loop {
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                self.attempt(seq, attempt, request, interner, token, &mut events)
            }))
            .unwrap_or_else(|payload| Err(AttemptError::Panicked(panic_message(&payload))));
            match result {
                Ok(outcome) => {
                    return finish(outcome, attempt + 1, events);
                }
                Err(AttemptError::Terminal(detail)) => {
                    return ServiceOutcome {
                        verdict: VerdictKind::Error,
                        level: None,
                        degraded: false,
                        hash: None,
                        detail,
                        attempts: attempt + 1,
                        events,
                    };
                }
                Err(AttemptError::Poisoned) => {
                    events.push(ServiceEvent::PoisonedEntry);
                    // Bound repeated poisoning (a hostile fault plan can
                    // poison every attempt) the same way panics are
                    // bounded — but always allow the one retry the
                    // evict-and-reparse cycle needs.
                    if attempt > max_retries {
                        return ServiceOutcome {
                            verdict: VerdictKind::Error,
                            level: None,
                            degraded: false,
                            hash: None,
                            detail: "cache entry repeatedly poisoned".to_string(),
                            attempts: attempt + 1,
                            events,
                        };
                    }
                }
                Err(AttemptError::Panicked(message)) => {
                    events.push(ServiceEvent::WorkerPanicked);
                    if attempt >= max_retries {
                        // Retry budget exhausted: one last attempt on a
                        // fresh rescue thread, then give up.
                        events.push(ServiceEvent::RescueAttempt);
                        return match self.rescue(seq, attempt + 1, request, interner, token) {
                            Ok((outcome, mut rescue_events)) => {
                                events.append(&mut rescue_events);
                                finish(outcome, attempt + 2, events)
                            }
                            Err(_) => ServiceOutcome {
                                verdict: VerdictKind::Error,
                                level: None,
                                degraded: false,
                                hash: None,
                                detail: format!(
                                    "analysis worker panicked on {} attempts (last: {message})",
                                    attempt + 2
                                ),
                                attempts: attempt + 2,
                                events,
                            },
                        };
                    }
                }
            }
            events.push(ServiceEvent::Retried);
            let delay = self.policy.backoff_delay(attempt);
            if !delay.is_zero() {
                thread::sleep(delay);
            }
            attempt += 1;
        }
    }

    /// The final-chance attempt on a dedicated thread: a panic there is
    /// contained by the thread boundary (and by `catch_unwind` inside
    /// [`Supervisor::attempt`]'s caller frame on that thread).
    fn rescue(
        &self,
        seq: u64,
        attempt: usize,
        request: &Request,
        interner: &Interner,
        token: &CancelToken,
    ) -> Result<(LadderVerdict, Vec<ServiceEvent>), ()> {
        thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let mut events = Vec::new();
                panic::catch_unwind(AssertUnwindSafe(|| {
                    self.attempt(seq, attempt, request, interner, token, &mut events)
                }))
                .map(|r| r.map(|o| (o, events)))
            });
            match handle.join() {
                Ok(Ok(Ok(ok))) => Ok(ok),
                // Panicked (caught or through the thread), or a
                // resolution error on the last attempt: give up.
                _ => Err(()),
            }
        })
    }

    /// One attempt: inject faults, resolve the workload, run (or recall)
    /// the ladder.
    fn attempt(
        &self,
        seq: u64,
        attempt: usize,
        request: &Request,
        interner: &Interner,
        token: &CancelToken,
        events: &mut Vec<ServiceEvent>,
    ) -> Result<LadderVerdict, AttemptError> {
        let faults = self.faults.service_faults(seq, attempt);
        if let Some(d) = faults.slow_request {
            events.push(ServiceEvent::SlowRequest);
            thread::sleep(d);
        }
        if let Some(d) = faults.stall_shard {
            events.push(ServiceEvent::ShardStalled);
            thread::sleep(d);
        }
        let (hash, set) = match &request.body {
            RequestBody::Source(src) => interner.intern(src).map_err(attempt_error)?,
            RequestBody::Hash(h) => (*h, interner.lookup(*h).map_err(attempt_error)?),
            RequestBody::Edit { base, script } => {
                let ops = parse_edit_script(script).map_err(AttemptError::Terminal)?;
                let base_set = interner.lookup(*base).map_err(attempt_error)?;
                let patched = apply_edit_script(&base_set, &ops).map_err(AttemptError::Terminal)?;
                let (hash, set) = interner.intern_set(patched);
                interner.record_delta_hit();
                events.push(ServiceEvent::CacheDeltaHit);
                (hash, set)
            }
        };
        if faults.poison_cache {
            interner.poison(hash);
            // Observe our own poison, as any other worker would: the
            // entry is evicted and this attempt fails retryably.
            return Err(attempt_error(
                interner.lookup(hash).err().unwrap_or(InternError::Poisoned),
            ));
        }
        if faults.panic_worker {
            panic!("injected service fault: worker panic (request {seq}, attempt {attempt})");
        }
        if let Some(memo) = interner.memoized(hash, request.m) {
            return Ok(LadderVerdict {
                hash,
                outcome: LadderOutcome {
                    admit: memo.admit,
                    level: memo.level,
                    degraded: false,
                    detail: "memoized verdict".to_string(),
                },
            });
        }
        let outcome = run_ladder(&set, request.m, token);
        if !outcome.degraded {
            interner.memoize(
                hash,
                request.m,
                MemoOutcome {
                    admit: outcome.admit,
                    level: outcome.level,
                },
            );
        }
        Ok(LadderVerdict { hash, outcome })
    }
}

/// Applies a parsed edit script to a resident base set, producing the
/// patched set. Each edited task's graph goes through [`Dag::edit`], so
/// its `DerivedCache` is patched in place (shared outright for
/// WCET-only scripts) rather than rebuilt; untouched tasks share their
/// `Task` wholesale.
///
/// [`Dag::edit`]: rtpool_graph::Dag::edit
fn apply_edit_script(base: &TaskSet, ops: &[EditScript]) -> Result<TaskSet, String> {
    let tasks: Vec<&Task> = base.iter().map(|(_, t)| t).collect();
    for op in ops {
        if op.task >= tasks.len() {
            return Err(format!(
                "edit addresses task {} but the base set has {}",
                op.task,
                tasks.len()
            ));
        }
    }
    let mut out = Vec::with_capacity(tasks.len());
    for (ti, task) in tasks.iter().enumerate() {
        let mine: Vec<&EditScriptOp> = ops
            .iter()
            .filter(|op| op.task == ti)
            .map(|op| &op.op)
            .collect();
        if mine.is_empty() {
            out.push((*task).clone());
            continue;
        }
        let mut edit = task.dag().edit();
        for op in mine {
            match op {
                EditScriptOp::SetWcet { node, wcet } => {
                    edit.set_wcet(NodeId::from_index(*node), *wcet);
                }
                EditScriptOp::InsertEdge { from, to } => {
                    edit.insert_edge(NodeId::from_index(*from), NodeId::from_index(*to));
                }
                EditScriptOp::InsertNode { wcet, preds, succs } => {
                    let preds: Vec<NodeId> =
                        preds.iter().copied().map(NodeId::from_index).collect();
                    let succs: Vec<NodeId> =
                        succs.iter().copied().map(NodeId::from_index).collect();
                    edit.insert_node(*wcet, &preds, &succs);
                }
                EditScriptOp::SetBlocking { fork, join, on } => {
                    edit.set_blocking(NodeId::from_index(*fork), NodeId::from_index(*join), *on);
                }
            }
        }
        let (dag, _delta) = edit
            .apply()
            .map_err(|e| format!("edit rejected on task {ti}: {e}"))?;
        out.push(
            Task::new(dag, task.period(), task.deadline())
                .map_err(|e| format!("edited task {ti} is invalid: {e}"))?,
        );
    }
    Ok(TaskSet::new(out))
}

/// A resolved workload plus its ladder answer.
struct LadderVerdict {
    hash: u64,
    outcome: LadderOutcome,
}

fn finish(v: LadderVerdict, attempts: usize, events: Vec<ServiceEvent>) -> ServiceOutcome {
    ServiceOutcome {
        verdict: if v.outcome.admit {
            VerdictKind::Admit
        } else {
            VerdictKind::Reject
        },
        level: Some(v.outcome.level),
        degraded: v.outcome.degraded,
        hash: Some(v.hash),
        detail: v.outcome.detail,
        attempts,
        events,
    }
}

fn attempt_error(e: InternError) -> AttemptError {
    match e {
        InternError::Poisoned => AttemptError::Poisoned,
        other => AttemptError::Terminal(other.to_string()),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;

    const SRC: &str = "task period=100\n  node a 10\n  node b 5\n  edge a b\nend\n";

    fn request(id: u64, m: usize) -> Request {
        Request {
            id,
            m,
            priority: 4,
            deadline_us: 0,
            body: RequestBody::Source(SRC.to_string()),
        }
    }

    fn retrying(faults: FaultPlan) -> Supervisor {
        Supervisor::new(
            RecoveryPolicy::RetryWithBackoff {
                max_retries: 2,
                base_delay: Duration::ZERO,
            },
            faults,
        )
    }

    #[test]
    fn clean_request_admits_first_try() {
        let interner = Interner::new(8);
        let sup = retrying(FaultPlan::seeded(1));
        let out = sup.execute(0, &request(1, 4), &interner, &CancelToken::never());
        assert_eq!(out.verdict, VerdictKind::Admit);
        assert_eq!(out.attempts, 1);
        assert!(out.events.is_empty());
        assert!(out.hash.is_some());
        // A second identical request hits the memo.
        let out2 = sup.execute(1, &request(2, 4), &interner, &CancelToken::never());
        assert_eq!(out2.verdict, VerdictKind::Admit);
        assert_eq!(out2.detail, "memoized verdict");
    }

    #[test]
    fn transient_panic_is_retried_to_success() {
        let interner = Interner::new(8);
        let sup = retrying(FaultPlan::seeded(1).service_panic_on(0));
        let out = sup.execute(0, &request(1, 4), &interner, &CancelToken::never());
        assert_eq!(out.verdict, VerdictKind::Admit);
        assert_eq!(out.attempts, 2);
        assert_eq!(
            out.events,
            vec![ServiceEvent::WorkerPanicked, ServiceEvent::Retried]
        );
    }

    #[test]
    fn persistent_panic_exhausts_into_error() {
        let interner = Interner::new(8);
        let sup = retrying(FaultPlan::seeded(1).service_panic_always(0));
        let out = sup.execute(0, &request(1, 4), &interner, &CancelToken::never());
        assert_eq!(out.verdict, VerdictKind::Error);
        // 1 initial + 2 retries + 1 rescue.
        assert_eq!(out.attempts, 4);
        assert!(out.events.contains(&ServiceEvent::RescueAttempt));
        assert!(out.detail.contains("panicked"));
    }

    #[test]
    fn abort_policy_goes_straight_to_rescue() {
        let interner = Interner::new(8);
        let sup = Supervisor::new(
            RecoveryPolicy::Abort,
            FaultPlan::seeded(1).service_panic_on(0),
        );
        // The transient fault only fires on attempt 0; Abort grants no
        // retries, so the rescue thread's attempt (index 1) succeeds.
        let out = sup.execute(0, &request(1, 4), &interner, &CancelToken::never());
        assert_eq!(out.verdict, VerdictKind::Admit);
        assert!(out.events.contains(&ServiceEvent::RescueAttempt));
    }

    #[test]
    fn poisoned_entry_is_evicted_and_retried() {
        let interner = Interner::new(8);
        let sup = retrying(FaultPlan::seeded(1).service_poison_on(0));
        let out = sup.execute(0, &request(1, 4), &interner, &CancelToken::never());
        assert_eq!(out.verdict, VerdictKind::Admit, "detail: {}", out.detail);
        assert_eq!(out.attempts, 2);
        assert!(out.events.contains(&ServiceEvent::PoisonedEntry));
    }

    #[test]
    fn parse_error_is_terminal() {
        let interner = Interner::new(8);
        let sup = retrying(FaultPlan::seeded(1));
        let req = Request {
            body: RequestBody::Source("task period=\nend".to_string()),
            ..request(1, 4)
        };
        let out = sup.execute(0, &req, &interner, &CancelToken::never());
        assert_eq!(out.verdict, VerdictKind::Error);
        assert_eq!(out.attempts, 1);
        assert!(out.detail.contains("parse error"));
    }

    #[test]
    fn unknown_hash_is_terminal() {
        let interner = Interner::new(8);
        let sup = retrying(FaultPlan::seeded(1));
        let req = Request {
            body: RequestBody::Hash(0xdead_beef),
            ..request(1, 4)
        };
        let out = sup.execute(0, &req, &interner, &CancelToken::never());
        assert_eq!(out.verdict, VerdictKind::Error);
        assert!(out.detail.contains("unknown content hash"));
    }

    fn edit_request(id: u64, m: usize, base: u64, script: &str) -> Request {
        Request {
            id,
            m,
            priority: 4,
            deadline_us: 0,
            body: RequestBody::Edit {
                base,
                script: script.to_string(),
            },
        }
    }

    #[test]
    fn edit_request_answers_from_patched_entry() {
        let interner = Interner::new(8);
        let sup = retrying(FaultPlan::seeded(1));
        let first = sup.execute(0, &request(1, 4), &interner, &CancelToken::never());
        let base = first.hash.expect("base interned");
        let out = sup.execute(
            1,
            &edit_request(2, 4, base, "wcet:0.0=12"),
            &interner,
            &CancelToken::never(),
        );
        assert_eq!(out.verdict, VerdictKind::Admit, "detail: {}", out.detail);
        assert!(out.events.contains(&ServiceEvent::CacheDeltaHit));
        let patched = out.hash.expect("patched hash");
        assert_ne!(patched, base, "the edit changes the content hash");
        assert_eq!(interner.stats().delta_hits, 1);
        // The delta-patched answer equals the cold-path answer for the
        // equivalent inline source.
        let cold_interner = Interner::new(8);
        let cold = sup.execute(
            2,
            &Request {
                body: RequestBody::Source(SRC.replace("node a 10", "node a 12")),
                ..request(3, 4)
            },
            &cold_interner,
            &CancelToken::never(),
        );
        assert_eq!(cold.verdict, out.verdict);
        assert_eq!(cold.level, out.level);
        assert_eq!(
            cold.hash, out.hash,
            "structural hash agrees with cold parse"
        );
        // Resubmitting the same edit hits the patched entry's memo.
        let again = sup.execute(
            3,
            &edit_request(4, 4, base, "wcet:0.0=12"),
            &interner,
            &CancelToken::never(),
        );
        assert_eq!(again.detail, "memoized verdict");
        assert_eq!(interner.stats().delta_hits, 2);
    }

    #[test]
    fn edit_errors_are_terminal() {
        let interner = Interner::new(8);
        let sup = retrying(FaultPlan::seeded(1));
        let first = sup.execute(0, &request(1, 4), &interner, &CancelToken::never());
        let base = first.hash.expect("base interned");
        // Unknown base hash.
        let out = sup.execute(
            1,
            &edit_request(2, 4, base ^ 1, "wcet:0.0=12"),
            &interner,
            &CancelToken::never(),
        );
        assert_eq!(out.verdict, VerdictKind::Error);
        assert!(out.detail.contains("unknown content hash"));
        // Malformed script.
        let out = sup.execute(
            2,
            &edit_request(3, 4, base, "warp:0.0=12"),
            &interner,
            &CancelToken::never(),
        );
        assert_eq!(out.verdict, VerdictKind::Error);
        assert!(out.detail.contains("unknown edit verb"));
        // Script addressing a task the set does not have.
        let out = sup.execute(
            3,
            &edit_request(4, 4, base, "wcet:9.0=12"),
            &interner,
            &CancelToken::never(),
        );
        assert_eq!(out.verdict, VerdictKind::Error);
        assert!(out.detail.contains("addresses task 9"));
        // Graph-level rejection (self-loop edge).
        let out = sup.execute(
            4,
            &edit_request(5, 4, base, "edge:0.0>0"),
            &interner,
            &CancelToken::never(),
        );
        assert_eq!(out.verdict, VerdictKind::Error);
        assert!(
            out.detail.contains("edit rejected on task 0"),
            "{}",
            out.detail
        );
        assert_eq!(interner.stats().delta_hits, 0, "failed edits are not hits");
    }

    #[test]
    fn stall_and_slow_faults_delay_but_answer() {
        let interner = Interner::new(8);
        let sup = retrying(
            FaultPlan::seeded(1)
                .service_stall_prob(1.0, Duration::from_millis(5))
                .service_slow_prob(1.0, Duration::from_millis(5)),
        );
        let t0 = std::time::Instant::now();
        let out = sup.execute(0, &request(1, 4), &interner, &CancelToken::never());
        assert_eq!(out.verdict, VerdictKind::Admit);
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert!(out.events.contains(&ServiceEvent::ShardStalled));
        assert!(out.events.contains(&ServiceEvent::SlowRequest));
    }
}
