//! The graceful-degradation analysis ladder.
//!
//! An admission request climbs four rungs of increasing cost, each a
//! *sound* screen for the next:
//!
//! 1. **Prefilter** — pure arithmetic: total utilization vs `m`, each
//!    task's critical path vs its deadline. Rejections here agree with
//!    the exact analysis (a diverging fix-point / a chain longer than
//!    the deadline), so they are never marked degraded.
//! 2. **Deadlock** — the cheap Lemma 1/3 certificate first, then the
//!    exact maximum `BF` antichain. A possible deadlock means the exact
//!    RTA's concurrency floor `m − A(τᵢ)` is non-positive, so this
//!    rejection agrees with the definitive rung too.
//! 3. **Limited** — the paper's Lemma 4 limited-concurrency RTA
//!    (divisor `m − b̄`). Its *admit* is sound versus the definitive
//!    rung: `m − A ≥ m − b̄` shrinks interference monotonically, so a
//!    set schedulable under `Limited` is schedulable under
//!    `LimitedExact` (pinned by the core crate's model-dominance test).
//!    Its *reject* may be pessimism.
//! 4. **Exact** — the `LimitedExact` RTA (divisor `m − A(τᵢ)`, the
//!    exact antichain): the definitive answer.
//!
//! A [`CancelToken`] threads the per-request deadline budget through
//! every rung (the cancellable fix-points of `rtpool-core` checkpoint
//! each iteration). When the budget runs out the ladder answers with
//! what the deepest *completed* rung established, marked `degraded`:
//!
//! * a **degraded admit** only ever comes from rung 3, so it implies
//!   the exact rung would also admit — degradation never admits a set
//!   the full analysis would reject;
//! * a **degraded reject** may be pessimistic (the full ladder might
//!   admit); clients can resubmit with a larger budget.

use rtpool_core::analysis::global::{analyze_many_cancellable, ConcurrencyModel};
use rtpool_core::analysis::{SchedResult, TaskVerdict};
use rtpool_core::deadlock::{self, GlobalVerdict};
use rtpool_core::{CancelToken, ConcurrencyAnalysis, TaskSet};

use super::protocol::LadderLevel;

/// The ladder's answer for one `(set, m)` pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LadderOutcome {
    /// Whether the set is admitted.
    pub admit: bool,
    /// The rung that produced the answer.
    pub level: LadderLevel,
    /// Whether the budget cut the climb short of the definitive rung.
    pub degraded: bool,
    /// Human-readable reason.
    pub detail: String,
}

impl LadderOutcome {
    fn degraded_reject(level: LadderLevel, detail: impl Into<String>) -> Self {
        LadderOutcome {
            admit: false,
            level,
            degraded: true,
            detail: detail.into(),
        }
    }
}

/// Climbs the full ladder under `token`'s budget.
#[must_use]
pub fn run_ladder(set: &TaskSet, m: usize, token: &CancelToken) -> LadderOutcome {
    run_ladder_capped(set, m, token, LadderLevel::Exact)
}

/// Climbs the ladder no deeper than `cap`.
///
/// The server uses `cap` to pre-commit to a cheap answer — e.g.
/// [`LadderLevel::Prefilter`] for a request whose budget already expired
/// in the queue — and the test suite uses it to pin the degradation
/// semantics deterministically (a capped climb is exactly "the budget
/// ran out after rung `cap`"). Any answer from a rung shallower than
/// [`LadderLevel::Exact`] that is not a sound rejection or a sound
/// admission for the definitive rung is marked degraded.
#[must_use]
pub fn run_ladder_capped(
    set: &TaskSet,
    m: usize,
    token: &CancelToken,
    cap: LadderLevel,
) -> LadderOutcome {
    // Rung 1: prefilter.
    let util = set.total_utilization();
    #[allow(clippy::cast_precision_loss)]
    if util > m as f64 {
        return LadderOutcome {
            admit: false,
            level: LadderLevel::Prefilter,
            degraded: false,
            detail: format!("total utilization {util:.3} exceeds m={m}"),
        };
    }
    for (id, task) in set.iter() {
        if task.critical_path_length() > task.deadline() {
            return LadderOutcome {
                admit: false,
                level: LadderLevel::Prefilter,
                degraded: false,
                detail: format!(
                    "task {}: critical path {} exceeds deadline {}",
                    id.index(),
                    task.critical_path_length(),
                    task.deadline()
                ),
            };
        }
    }
    if cap == LadderLevel::Prefilter {
        return LadderOutcome::degraded_reject(
            LadderLevel::Prefilter,
            "budget exhausted before analysis",
        );
    }
    if token.is_cancelled() {
        return LadderOutcome::degraded_reject(
            LadderLevel::Prefilter,
            "budget exhausted before analysis",
        );
    }

    // Rung 2: deadlock screens.
    for (id, task) in set.iter() {
        let ca = ConcurrencyAnalysis::new(task.dag());
        // The Lemma 1 bound `l̄ = m − b̄ > 0` is a cheap sufficient
        // certificate of freedom; the exact antichain decides the rest
        // (and lands in the DAG's DerivedCache, where the exact RTA
        // reuses it).
        let certified_free = deadlock::lower_bound_certificate(&ca, m).is_some();
        let deadlocky = !certified_free
            && matches!(
                deadlock::check_global_with(&ca, m),
                GlobalVerdict::DeadlockPossible { .. }
            );
        if deadlocky {
            return LadderOutcome {
                admit: false,
                level: LadderLevel::Deadlock,
                degraded: false,
                detail: format!(
                    "task {}: {m} threads can deadlock (BF antichain ≥ m)",
                    id.index()
                ),
            };
        }
    }
    if cap == LadderLevel::Deadlock || token.is_cancelled() {
        return LadderOutcome::degraded_reject(
            LadderLevel::Deadlock,
            "budget exhausted after deadlock screen",
        );
    }

    // Rung 3: limited-concurrency RTA.
    let limited = match analyze_many_cancellable(set, m, &[ConcurrencyModel::Limited], token) {
        Err(_) => {
            return LadderOutcome::degraded_reject(
                LadderLevel::Deadlock,
                "budget exhausted during limited RTA",
            );
        }
        Ok(mut results) => results.remove(0),
    };
    let limited_admit = limited.is_schedulable();
    if cap == LadderLevel::Limited {
        return rung3_outcome(limited_admit, &limited);
    }

    // Rung 4: exact-antichain RTA (definitive).
    match analyze_many_cancellable(set, m, &[ConcurrencyModel::LimitedExact], token) {
        Err(_) => rung3_outcome(limited_admit, &limited),
        Ok(mut results) => {
            let exact = results.remove(0);
            LadderOutcome {
                admit: exact.is_schedulable(),
                level: LadderLevel::Exact,
                degraded: false,
                detail: reject_detail(&exact).unwrap_or_default(),
            }
        }
    }
}

/// The ladder's answer when rung 3 is the deepest completed rung.
fn rung3_outcome(limited_admit: bool, limited: &SchedResult) -> LadderOutcome {
    if limited_admit {
        LadderOutcome {
            admit: true,
            level: LadderLevel::Limited,
            degraded: true,
            detail: "admitted by limited RTA (sound under-approximation)".to_string(),
        }
    } else {
        LadderOutcome {
            admit: false,
            level: LadderLevel::Limited,
            degraded: true,
            detail: reject_detail(limited).map_or_else(String::new, |d| {
                format!("{d} (limited RTA; may be pessimistic)")
            }),
        }
    }
}

/// The first unschedulable task's reason, if any.
fn reject_detail(result: &SchedResult) -> Option<String> {
    result.iter().find_map(|(id, v)| match v {
        TaskVerdict::Schedulable { .. } => None,
        TaskVerdict::Unschedulable { reason } => Some(format!("task {}: {reason}", id.index())),
    })
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    use rtpool_core::textfmt::parse_task_set;

    use super::*;

    fn blocking_pair_set() -> TaskSet {
        // Two two-replica blocking fork-joins: deadlock-free on m ≥ 3.
        parse_task_set(
            "task period=1000\n\
             \x20 node src 1\n\
             \x20 node f1 10\n\
             \x20 node a 5\n\
             \x20 node b 5\n\
             \x20 node j1 10\n\
             \x20 node snk 1\n\
             \x20 edge src f1\n\
             \x20 edge f1 a\n\
             \x20 edge f1 b\n\
             \x20 edge a j1\n\
             \x20 edge b j1\n\
             \x20 edge j1 snk\n\
             \x20 blocking f1 j1\n\
             end\n",
        )
        .expect("fixture parses")
    }

    #[test]
    fn utilization_overload_rejects_at_prefilter() {
        let set = parse_task_set("task period=10\n  node a 100\nend\n").unwrap();
        let out = run_ladder(&set, 2, &CancelToken::never());
        assert!(!out.admit);
        assert_eq!(out.level, LadderLevel::Prefilter);
        assert!(!out.degraded);
    }

    #[test]
    fn long_chain_rejects_at_prefilter() {
        let set = parse_task_set(
            "task period=100 deadline=15\n  node a 10\n  node b 10\n  edge a b\nend\n",
        )
        .unwrap();
        let out = run_ladder(&set, 8, &CancelToken::never());
        assert!(!out.admit);
        assert_eq!(out.level, LadderLevel::Prefilter);
        assert!(!out.degraded);
    }

    #[test]
    fn deadlock_rejects_at_deadlock_rung() {
        // One replica needs 2 suspended forks; two tasks' worth of BF
        // pressure on m=1 deadlocks trivially.
        let set = parse_task_set(
            "task period=1000\n\
             \x20 node f 1\n\
             \x20 node c 1\n\
             \x20 node j 1\n\
             \x20 edge f c\n\
             \x20 edge c j\n\
             \x20 blocking f j\n\
             end\n",
        )
        .unwrap();
        let out = run_ladder(&set, 1, &CancelToken::never());
        assert!(!out.admit);
        assert_eq!(out.level, LadderLevel::Deadlock);
        assert!(!out.degraded);
    }

    #[test]
    fn healthy_set_admits_at_exact() {
        let set = blocking_pair_set();
        let out = run_ladder(&set, 4, &CancelToken::never());
        assert!(out.admit, "detail: {}", out.detail);
        assert_eq!(out.level, LadderLevel::Exact);
        assert!(!out.degraded);
    }

    #[test]
    fn expired_budget_degrades_without_admitting() {
        let set = blocking_pair_set();
        let token = CancelToken::with_deadline(Instant::now());
        let out = run_ladder(&set, 4, &token);
        assert!(out.degraded);
        assert!(!out.admit, "an exhausted budget must never admit blindly");
    }

    #[test]
    fn capped_climb_is_degraded_and_sound() {
        let set = blocking_pair_set();
        let never = CancelToken::never();
        for cap in [
            LadderLevel::Prefilter,
            LadderLevel::Deadlock,
            LadderLevel::Limited,
        ] {
            let out = run_ladder_capped(&set, 4, &never, cap);
            assert!(out.degraded, "cap {cap:?}");
            assert!(out.level <= cap, "cap {cap:?}");
            if out.admit {
                // Degraded admits must agree with the definitive rung.
                let full = run_ladder(&set, 4, &never);
                assert!(full.admit, "cap {cap:?} admitted, exact rejected");
            }
        }
        // The Limited cap does admit this healthy set — the degraded
        // admit path is exercised, not vacuous.
        let limited = run_ladder_capped(&set, 4, &never, LadderLevel::Limited);
        assert!(limited.admit && limited.degraded);
    }
}
