//! The admission server: ingress, dispatch, and reporting.
//!
//! ```text
//!                 ┌────────────┐  full   ┌──────┐
//!  submit(line) ─▶│  breaker   │───────▶ │ busy │──▶ responses
//!                 │  (shed?)   │  shed   └──────┘
//!                 └─────┬──────┘─────────▶ shed ───▶ responses
//!                       │ accepted
//!                 ┌─────▼──────┐   batches   ┌───────────────┐
//!                 │  bounded   │────────────▶│  SweepPool    │
//!                 │  ingress   │ dispatcher  │  fan-out      │
//!                 └────────────┘             │  supervisor   │
//!                                            │  ladder       │
//!                                            └──────┬────────┘
//!                                                   ▼
//!                                               responses
//! ```
//!
//! Every submitted line produces **exactly one** [`Response`] on the
//! server's outbound channel: parse failures, sheds, and busy
//! rejections are answered at ingress; accepted requests are answered
//! by the supervised analysis, crashes included. Shutdown closes the
//! queue, drains the backlog (accepted work is never dropped), and
//! returns a [`ServeReport`].
//!
//! The per-request deadline budget starts at *arrival* — time spent
//! queued and batched counts against it, so a request that aged out in
//! the queue degrades at the prefilter rung instead of burning worker
//! time on an answer nobody is waiting for.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rtpool_core::CancelToken;
use rtpool_exec::{FaultPlan, RecoveryPolicy};
use rtpool_trace::{
    assemble, EngineKind, EventKind, LaneRecorder, LatencyHistogram, SeqClock, TimeUnit, Trace,
};

use super::breaker::{BreakerConfig, BreakerStats, CircuitBreaker};
use super::dispatch::ServePool;
use super::interner::{Interner, InternerStats};
use super::protocol::{self, Request, Response, VerdictKind};
use super::queue::IngressQueue;
use super::supervisor::{ServiceEvent, Supervisor};
use crate::sweep::SweepPool;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Ingress queue capacity (requests buffered before `busy`).
    pub queue_cap: usize,
    /// Max requests dispatched to the sweep pool per batch
    /// (`0` = twice the pool's worker count).
    pub batch_max: usize,
    /// Deadline budget for requests that do not carry one
    /// (`0` = unlimited).
    pub default_deadline_us: u64,
    /// Circuit-breaker settings.
    pub breaker: BreakerConfig,
    /// Interner capacity (distinct task sets held).
    pub interner_cap: usize,
    /// Recovery policy for panicking analysis workers.
    pub recovery: RecoveryPolicy,
    /// Service-fault injection plan (chaos testing).
    pub faults: FaultPlan,
    /// Record a request-lifecycle trace in the `rtpool-trace` schema.
    pub record_trace: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_cap: 256,
            batch_max: 0,
            default_deadline_us: 0,
            breaker: BreakerConfig::default(),
            interner_cap: 256,
            recovery: RecoveryPolicy::RetryWithBackoff {
                max_retries: 2,
                base_delay: Duration::from_micros(50),
            },
            faults: FaultPlan::seeded(0),
            record_trace: false,
        }
    }
}

/// Monotone service counters.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    busy: AtomicU64,
    shed: AtomicU64,
    parse_errors: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    degraded: AtomicU64,
    panics: AtomicU64,
    retries: AtomicU64,
    /// Accepted requests answered so far (`accepted − served` = in flight).
    served: AtomicU64,
}

/// Final server report, returned by [`Server::shutdown`].
#[derive(Debug)]
pub struct ServeReport {
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Requests refused with `busy` (queue full).
    pub busy: u64,
    /// Requests refused with `shed` (breaker open).
    pub shed: u64,
    /// Lines that failed to parse (answered `error`).
    pub parse_errors: u64,
    /// Analysis verdicts: admitted.
    pub admitted: u64,
    /// Analysis verdicts: rejected.
    pub rejected: u64,
    /// `error` verdicts from served requests (crashes, unknown hashes).
    pub errors: u64,
    /// Verdicts marked degraded.
    pub degraded: u64,
    /// Worker panics caught by the supervisor.
    pub panics: u64,
    /// Supervisor retries.
    pub retries: u64,
    /// Service latency (arrival → verdict) of served requests, µs.
    pub latency: LatencyHistogram,
    /// Breaker statistics.
    pub breaker: BreakerStats,
    /// Interner statistics.
    pub interner: InternerStats,
    /// Ingress queue high-water mark.
    pub queue_peak: usize,
    /// Request-lifecycle trace, when recording was enabled.
    pub trace: Option<Trace>,
}

impl ServeReport {
    /// Renders the report as a JSON object (trace omitted) for the CLI
    /// `--summary` output and the CI soak artifact.
    #[must_use]
    pub fn to_json(&self) -> String {
        let q = |p: f64| {
            self.latency
                .quantile_upper(p)
                .map_or_else(|| "null".to_string(), |v| v.to_string())
        };
        format!(
            "{{ \"accepted\": {}, \"busy\": {}, \"shed\": {}, \"parse_errors\": {}, \
             \"admitted\": {}, \"rejected\": {}, \"errors\": {}, \"degraded\": {}, \
             \"panics\": {}, \"retries\": {}, \"queue_peak\": {}, \
             \"latency_us\": {{ \"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
             \"p999\": {}, \"max\": {} }}, \
             \"breaker\": {{ \"open\": {}, \"opens\": {}, \"closes\": {}, \"shed\": {} }}, \
             \"interner\": {{ \"entries\": {}, \"hits\": {}, \"misses\": {}, \
             \"evictions\": {}, \"memo_hits\": {}, \"delta_hits\": {} }} }}",
            self.accepted,
            self.busy,
            self.shed,
            self.parse_errors,
            self.admitted,
            self.rejected,
            self.errors,
            self.degraded,
            self.panics,
            self.retries,
            self.queue_peak,
            self.latency.count(),
            q(0.50),
            q(0.90),
            q(0.99),
            q(0.999),
            self.latency.max().unwrap_or(0),
            self.breaker.open,
            self.breaker.opens,
            self.breaker.closes,
            self.breaker.shed,
            self.interner.entries,
            self.interner.hits,
            self.interner.misses,
            self.interner.evictions,
            self.interner.memo_hits,
            self.interner.delta_hits,
        )
    }
}

/// An accepted request waiting for a worker.
struct Pending {
    seq: u64,
    arrival: Instant,
    request: Request,
}

/// Trace recording state: one control lane (request lifecycle,
/// supervision events) plus one lane per sweep worker (analysis
/// start/end). Worker lanes are only ever touched by their own sweep
/// worker, so the mutexes are uncontended; the control lane serializes
/// briefly.
struct TraceShared {
    clock: SeqClock,
    control: Mutex<LaneRecorder>,
    workers: Vec<Mutex<LaneRecorder>>,
}

struct Inner {
    default_deadline_us: u64,
    queue: IngressQueue<Pending>,
    breaker: CircuitBreaker,
    interner: Interner,
    supervisor: Supervisor,
    counters: Counters,
    /// Shard-local latency histograms, merged at report time.
    shards: Vec<Mutex<LatencyHistogram>>,
    trace: Option<TraceShared>,
    tx: Sender<Response>,
    t0: Instant,
    workers: usize,
}

impl Inner {
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn rec_control(&self, kind: EventKind) {
        if let Some(tr) = &self.trace {
            let t = self.now_nanos();
            tr.control
                .lock()
                .expect("trace lane lock not poisoned")
                .record(t, kind);
        }
    }

    fn rec_worker(&self, worker: usize, kind: EventKind) {
        if let Some(tr) = &self.trace {
            let t = self.now_nanos();
            tr.workers[worker]
                .lock()
                .expect("trace lane lock not poisoned")
                .record(t, kind);
        }
    }

    fn send(&self, response: Response) {
        // The receiver living shorter than the server is fine (e.g. a
        // client that hung up); verdicts are then dropped on the floor
        // by the channel, not by the server.
        let _ = self.tx.send(response);
    }
}

fn job_id(seq: u64) -> u32 {
    u32::try_from(seq & 0xffff_ffff).expect("masked to 32 bits")
}

/// The admission server. Submit JSON lines with [`Server::submit`];
/// responses arrive on the channel returned by [`Server::start`];
/// finish with [`Server::shutdown`].
pub struct Server {
    inner: Arc<Inner>,
    pool: ServePool,
    dispatcher: Option<std::thread::JoinHandle<()>>,
    seq: AtomicU64,
}

impl Server {
    /// Starts a server fanning analysis across a [`SweepPool`] (the v1
    /// serve path). Returns the server handle and the outbound response
    /// channel. Use [`Server::start_on`] to select the dispatch engine.
    #[must_use]
    pub fn start(config: ServeConfig, pool: Arc<SweepPool>) -> (Server, Receiver<Response>) {
        Server::start_on(config, ServePool::Sweep(pool))
    }

    /// Starts a server fanning analysis across `pool` — either serve
    /// dispatch engine. Returns the server handle and the outbound
    /// response channel.
    #[must_use]
    pub fn start_on(config: ServeConfig, pool: ServePool) -> (Server, Receiver<Response>) {
        let workers = pool.threads();
        let batch_max = if config.batch_max == 0 {
            workers * 2
        } else {
            config.batch_max
        };
        let (tx, rx) = channel();
        let trace = config.record_trace.then(|| {
            let clock = SeqClock::new();
            TraceShared {
                control: Mutex::new(LaneRecorder::new(&clock)),
                workers: (0..workers)
                    .map(|_| Mutex::new(LaneRecorder::new(&clock)))
                    .collect(),
                clock,
            }
        });
        let inner = Arc::new(Inner {
            default_deadline_us: config.default_deadline_us,
            queue: IngressQueue::new(config.queue_cap),
            breaker: CircuitBreaker::new(config.breaker),
            interner: Interner::new(config.interner_cap),
            supervisor: Supervisor::new(config.recovery, config.faults),
            counters: Counters::default(),
            shards: (0..workers)
                .map(|_| Mutex::new(LatencyHistogram::new()))
                .collect(),
            trace,
            tx,
            t0: Instant::now(),
            workers,
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            let pool = pool.clone();
            std::thread::Builder::new()
                .name("rtpool-serve-dispatch".to_string())
                .spawn(move || dispatch_loop(&inner, &pool, batch_max))
                .expect("spawning dispatcher")
        };
        (
            Server {
                inner,
                pool,
                dispatcher: Some(dispatcher),
                seq: AtomicU64::new(0),
            },
            rx,
        )
    }

    /// Whether no accepted request is queued or in flight. Useful for
    /// connection-oriented front-ends that must drain between clients.
    #[must_use]
    pub fn idle(&self) -> bool {
        let c = &self.inner.counters;
        // Read `served` first: if it momentarily lags `accepted` we
        // report busy, never the reverse.
        let served = c.served.load(Ordering::Acquire);
        let accepted = c.accepted.load(Ordering::Acquire);
        self.inner.queue.is_empty() && served == accepted
    }

    /// The dispatch pool the server fans out on.
    #[must_use]
    pub fn pool(&self) -> &ServePool {
        &self.pool
    }

    /// Ingests one JSON line. Always results in exactly one response on
    /// the outbound channel (possibly immediately: parse error, shed,
    /// or busy).
    pub fn submit(&self, line: &str) {
        let inner = &self.inner;
        let request = match protocol::parse_request(line) {
            Ok(r) => r,
            Err(detail) => {
                inner.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                inner.counters.errors.fetch_add(1, Ordering::Relaxed);
                inner.send(Response {
                    id: protocol::probe_id(line),
                    verdict: VerdictKind::Error,
                    level: None,
                    degraded: false,
                    latency_us: 0,
                    hash: None,
                    detail,
                });
                return;
            }
        };
        if !inner.breaker.admit(request.priority) {
            inner.counters.shed.fetch_add(1, Ordering::Relaxed);
            inner.rec_control(EventKind::Recovery {
                task: 0,
                label: "serve_shed".to_string(),
                node: None,
            });
            inner.send(Response {
                id: request.id,
                verdict: VerdictKind::Shed,
                level: None,
                degraded: false,
                latency_us: 0,
                hash: None,
                detail: "breaker open; priority below shed threshold".to_string(),
            });
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let pending = Pending {
            seq,
            arrival: Instant::now(),
            request,
        };
        match inner.queue.push(pending) {
            Ok(()) => {
                inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
                inner.rec_control(EventKind::JobReleased {
                    task: 0,
                    job: job_id(seq),
                });
            }
            Err(rejected) => {
                inner.counters.busy.fetch_add(1, Ordering::Relaxed);
                inner.rec_control(EventKind::Recovery {
                    task: 0,
                    label: "serve_busy".to_string(),
                    node: None,
                });
                inner.send(Response {
                    id: rejected.request.id,
                    verdict: VerdictKind::Busy,
                    level: None,
                    degraded: false,
                    latency_us: 0,
                    hash: None,
                    detail: format!("ingress queue full ({} pending)", inner.queue.capacity()),
                });
            }
        }
    }

    /// Stops ingress, drains every accepted request to a verdict, and
    /// returns the final report.
    ///
    /// # Panics
    ///
    /// Panics if the dispatcher thread itself panicked (a server bug —
    /// request-level crashes are contained by the supervisor).
    #[must_use]
    pub fn shutdown(mut self) -> ServeReport {
        self.inner.queue.close();
        if let Some(handle) = self.dispatcher.take() {
            handle.join().expect("dispatcher thread healthy");
        }
        let inner = &self.inner;
        let c = &inner.counters;
        let mut latency = LatencyHistogram::new();
        for shard in &inner.shards {
            latency.merge(&shard.lock().expect("shard lock not poisoned"));
        }
        let trace = inner.trace.as_ref().map(|tr| {
            let mut lanes = Vec::with_capacity(inner.workers + 1);
            lanes.push(take_lane(&tr.control, &tr.clock));
            for lane in &tr.workers {
                lanes.push(take_lane(lane, &tr.clock));
            }
            assemble(
                EngineKind::Exec,
                TimeUnit::Nanos,
                u32::try_from(inner.workers).expect("worker count fits u32"),
                1,
                inner.now_nanos(),
                lanes,
            )
        });
        ServeReport {
            accepted: c.accepted.load(Ordering::Relaxed),
            busy: c.busy.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            parse_errors: c.parse_errors.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            latency,
            breaker: inner.breaker.stats(),
            interner: inner.interner.stats(),
            queue_peak: inner.queue.pressure().0,
            trace,
        }
    }
}

/// Replaces a lane with a fresh one, returning the recorded lane.
fn take_lane(lane: &Mutex<LaneRecorder>, clock: &SeqClock) -> LaneRecorder {
    std::mem::replace(
        &mut *lane.lock().expect("trace lane lock not poisoned"),
        LaneRecorder::new(clock),
    )
}

fn dispatch_loop(inner: &Arc<Inner>, pool: &ServePool, batch_max: usize) {
    loop {
        let batch = inner.queue.pop_batch(batch_max);
        if batch.is_empty() {
            return; // closed and drained
        }
        let batch = Arc::new(batch);
        let inner2 = Arc::clone(inner);
        let batch2 = Arc::clone(&batch);
        pool.run_indexed(batch.len(), "serve", move |i, worker| {
            serve_one(&inner2, &batch2[i], worker);
        });
    }
}

/// Serves one accepted request on sweep worker `worker`.
fn serve_one(inner: &Inner, pending: &Pending, worker: usize) {
    let req = &pending.request;
    let seq = pending.seq;
    let budget_us = if req.deadline_us > 0 {
        req.deadline_us
    } else {
        inner.default_deadline_us
    };
    let token = if budget_us > 0 {
        CancelToken::with_deadline(pending.arrival + Duration::from_micros(budget_us))
    } else {
        CancelToken::never()
    };
    inner.rec_worker(
        worker,
        EventKind::NodeStart {
            task: 0,
            job: job_id(seq),
            node: 0,
            thread: u32::try_from(worker).expect("worker index fits u32"),
        },
    );
    let outcome = inner.supervisor.execute(seq, req, &inner.interner, &token);
    inner.rec_worker(
        worker,
        EventKind::NodeEnd {
            task: 0,
            job: job_id(seq),
            node: 0,
            thread: u32::try_from(worker).expect("worker index fits u32"),
        },
    );
    for event in &outcome.events {
        match event {
            ServiceEvent::WorkerPanicked => {
                inner.counters.panics.fetch_add(1, Ordering::Relaxed);
            }
            ServiceEvent::Retried => {
                inner.counters.retries.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        if *event == ServiceEvent::CacheDeltaHit {
            // Delta hits get their own first-class trace event (the
            // rtpool-trace metrics count them per task), not a generic
            // Recovery label.
            inner.rec_control(EventKind::CacheDeltaHit {
                task: 0,
                job: job_id(seq),
            });
        } else {
            inner.rec_control(EventKind::Recovery {
                task: 0,
                label: event.label().to_string(),
                node: None,
            });
        }
    }
    let latency = pending.arrival.elapsed();
    let latency_us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
    match outcome.verdict {
        VerdictKind::Admit => inner.counters.admitted.fetch_add(1, Ordering::Relaxed),
        VerdictKind::Reject => inner.counters.rejected.fetch_add(1, Ordering::Relaxed),
        _ => inner.counters.errors.fetch_add(1, Ordering::Relaxed),
    };
    if outcome.degraded {
        inner.counters.degraded.fetch_add(1, Ordering::Relaxed);
    }
    inner.shards[worker]
        .lock()
        .expect("shard lock not poisoned")
        .observe(latency_us);
    inner.breaker.observe(latency_us);
    inner.rec_control(EventKind::JobCompleted {
        task: 0,
        job: job_id(seq),
    });
    inner.counters.served.fetch_add(1, Ordering::Relaxed);
    inner.send(Response {
        id: req.id,
        verdict: outcome.verdict,
        level: outcome.level,
        degraded: outcome.degraded,
        latency_us,
        hash: outcome.hash,
        detail: outcome.detail,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::protocol::{encode_request, parse_response, LadderLevel, RequestBody};

    const SRC: &str = "task period=100\n  node a 10\n  node b 5\n  edge a b\nend\n";

    fn line(id: u64, m: usize) -> String {
        encode_request(&Request {
            id,
            m,
            priority: 4,
            deadline_us: 0,
            body: RequestBody::Source(SRC.to_string()),
        })
    }

    #[test]
    fn serves_and_shuts_down_cleanly() {
        let pool = Arc::new(SweepPool::new(2));
        let (server, rx) = Server::start(
            ServeConfig {
                record_trace: true,
                ..ServeConfig::default()
            },
            pool,
        );
        for id in 0..10 {
            server.submit(&line(id, 4));
        }
        // Malformed (no body), but the id is still recoverable for the
        // error response.
        server.submit("{\"id\": 10, \"m\": 4}");
        let report = server.shutdown();
        let responses: Vec<Response> = rx.iter().collect();
        assert_eq!(responses.len(), 11, "one response per submission");
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..11).collect::<Vec<_>>().as_slice());
        assert_eq!(report.accepted, 10);
        assert_eq!(report.parse_errors, 1);
        assert_eq!(report.admitted, 10);
        assert_eq!(report.errors, 1);
        // All ten analysis responses share one interned set.
        assert_eq!(report.interner.entries, 1);
        assert!(report.interner.memo_hits >= 1);
        let trace = report.trace.expect("trace recorded");
        assert!(
            trace.validate().is_empty(),
            "defects: {:?}",
            trace.validate()
        );
        // Round-trip a response line for good measure.
        let encoded = protocol::encode_response(&responses[0]);
        assert_eq!(parse_response(&encoded).unwrap(), responses[0]);
    }

    #[test]
    fn serves_on_injector_pool() {
        use crate::serve::dispatch::InjectorPool;
        let pool = ServePool::from(Arc::new(InjectorPool::new(2)));
        assert_eq!(pool.engine_label(), "injector");
        let (server, rx) = Server::start_on(
            ServeConfig {
                record_trace: true,
                ..ServeConfig::default()
            },
            pool,
        );
        for id in 0..10 {
            server.submit(&line(id, 4));
        }
        let report = server.shutdown();
        let responses: Vec<Response> = rx.iter().collect();
        assert_eq!(responses.len(), 10, "one response per submission");
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(report.accepted, 10);
        assert_eq!(report.admitted, 10);
        let trace = report.trace.expect("trace recorded");
        assert!(
            trace.validate().is_empty(),
            "defects: {:?}",
            trace.validate()
        );
    }

    #[test]
    fn hash_resubmission_skips_source() {
        let pool = Arc::new(SweepPool::new(2));
        let (server, rx) = Server::start(ServeConfig::default(), pool);
        server.submit(&line(1, 4));
        let first = rx.recv().expect("first response");
        assert_eq!(first.verdict, VerdictKind::Admit);
        let hash = first.hash.expect("hash present");
        server.submit(&encode_request(&Request {
            id: 2,
            m: 4,
            priority: 4,
            deadline_us: 0,
            body: RequestBody::Hash(hash),
        }));
        let second = rx.recv().expect("second response");
        assert_eq!(second.verdict, VerdictKind::Admit);
        assert_eq!(second.level, Some(LadderLevel::Exact));
        assert_eq!(second.detail, "memoized verdict");
        let report = server.shutdown();
        assert_eq!(report.admitted, 2);
    }

    #[test]
    fn edit_resubmission_hits_delta_path() {
        let pool = Arc::new(SweepPool::new(2));
        let (server, rx) = Server::start(
            ServeConfig {
                record_trace: true,
                ..ServeConfig::default()
            },
            pool,
        );
        server.submit(&line(1, 4));
        let first = rx.recv().expect("first response");
        let base = first.hash.expect("hash present");
        server.submit(&encode_request(&Request {
            id: 2,
            m: 4,
            priority: 4,
            deadline_us: 0,
            body: RequestBody::Edit {
                base,
                script: "wcet:0.0=12".to_string(),
            },
        }));
        let second = rx.recv().expect("second response");
        assert_eq!(second.verdict, VerdictKind::Admit, "{}", second.detail);
        assert_ne!(second.hash, Some(base), "edit produces a new content hash");
        let report = server.shutdown();
        assert_eq!(report.interner.delta_hits, 1);
        assert!(report.to_json().contains("\"delta_hits\": 1"));
        let trace = report.trace.expect("trace recorded");
        assert!(
            trace.validate().is_empty(),
            "defects: {:?}",
            trace.validate()
        );
        let hits = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CacheDeltaHit { .. }))
            .count();
        assert_eq!(hits, 1, "one CacheDeltaHit trace event for the edit");
    }

    #[test]
    fn expired_budget_degrades_at_prefilter() {
        let pool = Arc::new(SweepPool::new(1));
        let (server, rx) = Server::start(ServeConfig::default(), pool);
        server.submit(&encode_request(&Request {
            id: 9,
            m: 4,
            priority: 4,
            deadline_us: 1, // expires while queued
            body: RequestBody::Source(SRC.to_string()),
        }));
        std::thread::sleep(Duration::from_millis(5));
        let report = server.shutdown();
        let resp: Vec<Response> = rx.iter().collect();
        assert_eq!(resp.len(), 1);
        assert!(resp[0].degraded);
        assert_eq!(resp[0].verdict, VerdictKind::Reject);
        assert_eq!(report.degraded, 1);
    }
}
