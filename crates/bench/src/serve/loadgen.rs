//! Synthetic admission workloads and an in-process load driver.
//!
//! Produces seeded JSON-lines request streams (a mix of admissible,
//! infeasible, and structurally repeated task sets) and drives a
//! [`Server`] at a configurable pace while accounting for every
//! response. The `rtpool_loadgen` binary and the `bench_summary
//! --serve` benchmark both build on this module so that the overload
//! scenarios exercised in CI are exactly the ones measured.

use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtpool_core::textfmt::write_task_set;
use rtpool_gen::{DagGenConfig, TaskSetConfig};
use rtpool_trace::LatencyHistogram;

use super::protocol::{encode_request, Request, RequestBody, Response, VerdictKind, MAX_PRIORITY};
use super::server::Server;

/// Shape of a synthetic admission workload.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Number of requests to generate.
    pub requests: usize,
    /// Base seed; request `i` derives its own stream from `seed + i`.
    pub seed: u64,
    /// Core count each request asks to be admitted on.
    pub m: usize,
    /// Tasks per generated set.
    pub n_tasks: usize,
    /// Utilization range sampled per request. Spanning values above
    /// `m` guarantees a mix of admits and rejects.
    pub utilization: (f64, f64),
    /// Fraction of requests that resubmit an earlier request's source
    /// verbatim (exercises the content-hash interner).
    pub repeat_fraction: f64,
    /// Per-request service budget in microseconds (0 = server default).
    pub deadline_us: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            requests: 64,
            seed: 0x10ad,
            m: 8,
            n_tasks: 4,
            utilization: (1.0, 12.0),
            repeat_fraction: 0.25,
            deadline_us: 0,
        }
    }
}

/// Generates `cfg.requests` encoded request lines.
///
/// Generation is deterministic in `cfg.seed`. Request ids are the
/// stream indices `0..requests`; priorities cycle through the full
/// `0..=MAX_PRIORITY` range so shedding under overload is observable.
#[must_use]
pub fn gen_request_lines(cfg: &LoadConfig) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sources: Vec<String> = Vec::new();
    let mut lines = Vec::with_capacity(cfg.requests);
    for i in 0..cfg.requests {
        let repeat = !sources.is_empty() && rng.gen_bool(cfg.repeat_fraction.clamp(0.0, 1.0));
        let source = if repeat {
            let pick = rng.gen_range(0..sources.len());
            sources[pick].clone()
        } else {
            let util = rng.gen_range(cfg.utilization.0..=cfg.utilization.1);
            let set = TaskSetConfig::new(cfg.n_tasks, util, DagGenConfig::default())
                .generate(&mut rng)
                .expect("workload generation cannot fail for these parameters");
            let text = write_task_set(&set);
            sources.push(text.clone());
            text
        };
        let request = Request {
            id: i as u64,
            m: cfg.m,
            priority: (i % (MAX_PRIORITY as usize + 1)) as u8,
            deadline_us: cfg.deadline_us,
            body: RequestBody::Source(source),
        };
        lines.push(encode_request(&request));
    }
    lines
}

/// Outcome of driving a request stream through a server.
#[derive(Debug, Clone)]
pub struct DriveReport {
    /// Lines submitted.
    pub sent: u64,
    /// Responses received (every sent line must be answered).
    pub answered: u64,
    /// Requests that timed out waiting for a response — must be 0 for
    /// a healthy server.
    pub lost: u64,
    /// Verdict tallies.
    pub admitted: u64,
    /// Requests rejected as unschedulable.
    pub rejected: u64,
    /// Requests refused at ingress by queue backpressure.
    pub busy: u64,
    /// Requests shed by the open circuit breaker.
    pub shed: u64,
    /// Requests answered with an error verdict.
    pub errors: u64,
    /// Responses flagged as degraded (budget ran out mid-ladder).
    pub degraded: u64,
    /// End-to-end latency distribution as reported by the server.
    pub latency: LatencyHistogram,
    /// Wall-clock duration of the drive.
    pub elapsed: Duration,
}

impl DriveReport {
    /// Upper-bound p50 latency in microseconds, if any responses.
    #[must_use]
    pub fn p50_us(&self) -> Option<u64> {
        self.latency.quantile_upper(0.50)
    }

    /// Upper-bound p99 latency in microseconds, if any responses.
    #[must_use]
    pub fn p99_us(&self) -> Option<u64> {
        self.latency.quantile_upper(0.99)
    }

    /// Fraction of sent requests shed or refused at ingress.
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        (self.shed + self.busy) as f64 / self.sent as f64
    }
}

/// Submits `lines` to `server` (sleeping `pace` between submissions
/// when given) and waits for every response.
///
/// `rx` must be the receiver returned by [`Server::start`]. Waits up
/// to `drain_timeout` for each outstanding response before declaring
/// it lost.
pub fn drive(
    server: &Server,
    rx: &Receiver<Response>,
    lines: &[String],
    pace: Option<Duration>,
    drain_timeout: Duration,
) -> DriveReport {
    let start = Instant::now();
    let mut report = DriveReport {
        sent: 0,
        answered: 0,
        lost: 0,
        admitted: 0,
        rejected: 0,
        busy: 0,
        shed: 0,
        errors: 0,
        degraded: 0,
        latency: LatencyHistogram::new(),
        elapsed: Duration::ZERO,
    };
    for line in lines {
        server.submit(line);
        report.sent += 1;
        // Opportunistically drain responses so the channel (and our
        // accounting) keeps up with a long stream.
        while let Ok(resp) = rx.try_recv() {
            absorb(&mut report, &resp);
        }
        if let Some(p) = pace {
            std::thread::sleep(p);
        }
    }
    while report.answered < report.sent {
        match rx.recv_timeout(drain_timeout) {
            Ok(resp) => absorb(&mut report, &resp),
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                report.lost = report.sent - report.answered;
                break;
            }
        }
    }
    report.elapsed = start.elapsed();
    report
}

fn absorb(report: &mut DriveReport, resp: &Response) {
    report.answered += 1;
    match resp.verdict {
        VerdictKind::Admit => report.admitted += 1,
        VerdictKind::Reject => report.rejected += 1,
        VerdictKind::Busy => report.busy += 1,
        VerdictKind::Shed => report.shed += 1,
        VerdictKind::Error => report.errors += 1,
    }
    if resp.degraded {
        report.degraded += 1;
    }
    report.latency.observe(resp.latency_us);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_mixed() {
        let cfg = LoadConfig {
            requests: 24,
            ..LoadConfig::default()
        };
        let a = gen_request_lines(&cfg);
        let b = gen_request_lines(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 24);
        // Repeats mean strictly fewer distinct sources than requests
        // (the full lines always differ — ids are unique).
        let sources: Vec<String> = a
            .iter()
            .map(|l| {
                match super::super::protocol::parse_request(l)
                    .expect("valid line")
                    .body
                {
                    RequestBody::Source(s) => s,
                    _ => unreachable!("loadgen emits sources"),
                }
            })
            .collect();
        let distinct: std::collections::HashSet<&String> = sources.iter().collect();
        assert!(distinct.len() < sources.len());
    }

    #[test]
    fn ids_and_priorities_cycle() {
        let cfg = LoadConfig {
            requests: 10,
            ..LoadConfig::default()
        };
        let lines = gen_request_lines(&cfg);
        for (i, line) in lines.iter().enumerate() {
            let req = super::super::protocol::parse_request(line).expect("valid line");
            assert_eq!(req.id, i as u64);
            assert_eq!(req.priority, (i % 8) as u8);
        }
    }
}
