//! Latency-driven load-shedding circuit breaker.
//!
//! The server feeds every served request's latency into the breaker.
//! Latencies accumulate into a window histogram (the `rtpool-trace`
//! log₂ [`LatencyHistogram`]); when a window fills, its p99 upper bound
//! is compared against the configured SLO:
//!
//! * p99 above the SLO → the breaker **opens**: requests whose priority
//!   is below the shed threshold are answered `shed` immediately at
//!   ingress, so capacity drains to the traffic the operator cares
//!   about;
//! * a full window at or under the SLO → the breaker **re-closes**.
//!
//! Windows are sized in responses, not wall time, so the breaker is
//! deterministic under test (drive N latencies, observe the
//! transition). While open, windows keep filling from the traffic that
//! still flows — the breaker needs fresh evidence to close, and
//! high-priority traffic provides it.

use std::sync::Mutex;

use rtpool_trace::LatencyHistogram;

/// Breaker configuration.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// p99 service-latency objective, microseconds.
    pub slo_p99_us: u64,
    /// Responses per evaluation window (clamped to at least 8).
    pub window: usize,
    /// While open, requests with priority strictly below this are shed.
    pub shed_below_priority: u8,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            slo_p99_us: 50_000,
            window: 64,
            shed_below_priority: 4,
        }
    }
}

/// Point-in-time breaker statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Whether the breaker is currently open.
    pub open: bool,
    /// Closed → open transitions so far.
    pub opens: u64,
    /// Open → closed transitions so far.
    pub closes: u64,
    /// Requests shed while open.
    pub shed: u64,
    /// p99 upper bound of the last *completed* window, microseconds.
    pub last_window_p99_us: Option<u64>,
}

struct State {
    window: LatencyHistogram,
    stats: BreakerStats,
}

/// The breaker itself; cheap to share behind an `Arc`.
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<State>,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        let config = BreakerConfig {
            window: config.window.max(8),
            ..config
        };
        CircuitBreaker {
            config,
            state: Mutex::new(State {
                window: LatencyHistogram::new(),
                stats: BreakerStats::default(),
            }),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Admission check at ingress. Returns `false` when the request
    /// must be shed (breaker open and priority below the threshold);
    /// the shed is counted.
    #[must_use]
    pub fn admit(&self, priority: u8) -> bool {
        let mut st = self.state.lock().expect("breaker lock not poisoned");
        if st.stats.open && priority < self.config.shed_below_priority {
            st.stats.shed += 1;
            false
        } else {
            true
        }
    }

    /// Feeds one served request's latency; evaluates the window when it
    /// fills.
    pub fn observe(&self, latency_us: u64) {
        let mut st = self.state.lock().expect("breaker lock not poisoned");
        st.window.observe(latency_us);
        if (st.window.count() as usize) < self.config.window {
            return;
        }
        let p99 = st.window.quantile_upper(0.99).unwrap_or(0);
        st.stats.last_window_p99_us = Some(p99);
        st.window = LatencyHistogram::new();
        let overloaded = p99 > self.config.slo_p99_us;
        if overloaded && !st.stats.open {
            st.stats.open = true;
            st.stats.opens += 1;
        } else if !overloaded && st.stats.open {
            st.stats.open = false;
            st.stats.closes += 1;
        }
    }

    /// Whether the breaker is currently open.
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.state
            .lock()
            .expect("breaker lock not poisoned")
            .stats
            .open
    }

    /// Current statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> BreakerStats {
        self.state.lock().expect("breaker lock not poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(slo: u64, window: usize) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            slo_p99_us: slo,
            window,
            shed_below_priority: 4,
        })
    }

    #[test]
    fn opens_on_slow_window_and_recloses() {
        let b = breaker(100, 8);
        assert!(!b.is_open());
        for _ in 0..8 {
            b.observe(10_000);
        }
        assert!(b.is_open());
        assert_eq!(b.stats().opens, 1);
        // While open, low-priority traffic is shed, high flows.
        assert!(!b.admit(0));
        assert!(b.admit(7));
        assert_eq!(b.stats().shed, 1);
        // A healthy window re-closes it.
        for _ in 0..8 {
            b.observe(10);
        }
        assert!(!b.is_open());
        assert_eq!(b.stats().closes, 1);
        assert!(b.admit(0));
    }

    #[test]
    fn closed_breaker_sheds_nothing() {
        let b = breaker(100, 8);
        for p in 0..=7 {
            assert!(b.admit(p));
        }
        assert_eq!(b.stats().shed, 0);
    }

    #[test]
    fn partial_windows_do_not_transition() {
        let b = breaker(100, 8);
        for _ in 0..7 {
            b.observe(1_000_000);
        }
        assert!(!b.is_open(), "window not full yet");
        assert_eq!(b.stats().last_window_p99_us, None);
        b.observe(1_000_000);
        assert!(b.is_open());
        assert!(b.stats().last_window_p99_us.unwrap() > 100);
    }
}
