//! `rtpool-serve`: an overload-resilient schedulability admission
//! service.
//!
//! A long-lived server that accepts JSON-lines admission requests
//! (inline `.rtp` sources or content hashes of previously seen sets),
//! analyzes them with the paper's schedulability machinery, and answers
//! admit/reject verdicts — engineered to stay predictable *under
//! overload and partial failure* rather than just fast on the happy
//! path:
//!
//! * **Backpressure, not buffering** ([`queue`]): the ingress queue is
//!   strictly bounded; overflow is answered `busy` immediately.
//! * **Deadline budgets & graceful degradation** ([`ladder`]): each
//!   request carries a service budget from arrival; when it runs out
//!   the analysis ladder answers with its deepest completed rung,
//!   marked `degraded` — and a degraded *admit* is always sound.
//! * **Load shedding** ([`breaker`]): a latency-SLO circuit breaker
//!   sheds low-priority traffic while p99 is out of budget, and
//!   re-closes on recovery.
//! * **Supervision** ([`supervisor`]): panicking analysis workers are
//!   caught, retried under the executor's [`RecoveryPolicy`]
//!   semantics, and finished on a rescue thread — every request gets
//!   exactly one verdict.
//! * **Structural reuse** ([`interner`]): content-hashed interning
//!   shares parsed sets (and their `DerivedCache`s) across
//!   structurally identical submissions, with bounded LRU capacity.
//! * **Incremental resubmission** ([`protocol`]'s `edit` verb): a
//!   request can name a resident set by hash plus an edit script
//!   (WCET changes, edge/node inserts, blocking toggles); the server
//!   patches the base graphs' `DerivedCache`s via `Dag::edit` instead
//!   of reparsing and reanalyzing from scratch, records a
//!   `CacheDeltaHit`, and memoizes under the patched set's own hash.
//! * **Observability** ([`server`]): request lifecycles are recorded
//!   as `rtpool-trace` events and latencies as log₂ histograms.
//! * **Lock-free fan-out** ([`dispatch`]): request batches dispatch
//!   through an injector/stealer pool mirroring the executor's
//!   `Engine::V2LockFree` engine; the locked-range sweep pool remains
//!   selectable as the v1 serve path.
//!
//! The `rtpool_serve` binary wraps [`server::Server`] over
//! stdin/stdout or a Unix socket; `rtpool_loadgen` drives it at a
//! configurable overload factor and checks the resilience invariants
//! from the outside.
//!
//! [`RecoveryPolicy`]: rtpool_exec::RecoveryPolicy

pub mod breaker;
pub mod dispatch;
pub mod interner;
pub mod ladder;
pub mod loadgen;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod supervisor;

pub use breaker::{BreakerConfig, BreakerStats, CircuitBreaker};
pub use dispatch::{InjectorPool, ServePool};
pub use interner::{InternError, Interner, InternerStats, MemoOutcome};
pub use ladder::{run_ladder, run_ladder_capped, LadderOutcome};
pub use protocol::{
    parse_edit_script, EditScript, EditScriptOp, LadderLevel, Request, RequestBody, Response,
    VerdictKind,
};
pub use queue::IngressQueue;
pub use server::{ServeConfig, ServeReport, Server};
pub use supervisor::{ServiceEvent, ServiceOutcome, Supervisor};
