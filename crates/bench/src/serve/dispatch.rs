//! Lock-free batch dispatch for the admission server.
//!
//! [`InjectorPool`] is the serve-side counterpart of the executor's
//! `Engine::V2LockFree` dispatch engine: request indices flow through a
//! global [`Injector`] FIFO into per-worker Chase-Lev deques, and
//! workers run the canonical local-pop → injector-steal →
//! steal-from-peer loop. The only lock on the hot path of a batch is
//! the one `Mutex` acquire per *job* that publishes the batch to the
//! workers — every per-request hand-off (claim, steal, completion
//! count) is a single atomic operation, mirroring how
//! `crates/exec/src/engine_v2.rs` dispatches DAG nodes.
//!
//! [`ServePool`] lets [`Server`](super::server::Server) fan out on
//! either engine: the classic [`SweepPool`] (shared packed-range queue
//! under its own CAS protocol, v1 of the serve path) or an
//! `InjectorPool`. Both expose the same `run_indexed` contract —
//! results land in index order regardless of worker count or steal
//! interleaving — so the server's dispatch loop is engine-agnostic.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crossbeam_deque::{Injector, Steal, Stealer, Worker};

use crate::sweep::SweepPool;

/// Injector capacity: an upper bound on the cells of one batch. Serve
/// batches are bounded by `batch_max` (typically `2 × workers`), so
/// this is generous; [`InjectorPool::run_indexed`] rejects larger jobs
/// up front rather than risking the shim's overflow panic mid-flight.
const INJECTOR_CAP: usize = 1 << 16;

/// Per-worker deque capacity: bounds how many cells a single batch
/// steal can park locally. Batch steals cap themselves to the deque's
/// spare room, so this only shapes steal granularity.
const LOCAL_CAP: usize = 256;

/// Type-erased batch job: workers only need "run cell `i` (as worker
/// `w`)".
trait DispatchJob: Send + Sync {
    fn run_cell(&self, index: usize, worker: usize);
}

/// Concrete job: the cell closure plus one result slot per cell.
struct Job<T, F> {
    f: F,
    slots: Vec<OnceLock<T>>,
}

impl<T, F> DispatchJob for Job<T, F>
where
    T: Send + Sync,
    F: Fn(usize, usize) -> T + Send + Sync,
{
    fn run_cell(&self, index: usize, worker: usize) {
        let value = (self.f)(index, worker);
        self.slots[index]
            .set(value)
            .unwrap_or_else(|_| panic!("cell {index} executed twice"));
    }
}

struct State {
    /// Bumped once per job; workers participate in each generation
    /// exactly once.
    generation: u64,
    job: Option<Arc<dyn DispatchJob>>,
    shutdown: bool,
}

struct Shared {
    /// Global FIFO the submitter feeds; workers drain it into their
    /// local deques in batches.
    injector: Injector<u64>,
    /// Steal endpoints of every worker's local deque.
    stealers: Vec<Stealer<u64>>,
    state: Mutex<State>,
    /// Signals workers that a new job was published (or shutdown).
    work_cv: Condvar,
    /// Signals the submitter that a worker finished its part.
    done_cv: Condvar,
    /// Workers still draining the current job. The submitter only reads
    /// results once this hits zero, which guarantees every cell has
    /// executed and no worker still holds the job `Arc`.
    active: AtomicUsize,
    /// Lifetime count of successful peer-deque steals (observability).
    steals: AtomicU64,
}

/// A persistent pool of dispatch workers fanning batches out through a
/// lock-free injector/stealer pipeline. Same `run_indexed` contract as
/// [`SweepPool`]: create once per process, submit any number of jobs.
///
/// # Examples
///
/// ```
/// use rtpool_bench::serve::dispatch::InjectorPool;
///
/// let pool = InjectorPool::new(4);
/// let squares = pool.run_indexed(10, "squares", |i, _worker| i * i);
/// assert_eq!(squares[7], 49);
/// ```
pub struct InjectorPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Serializes jobs: one batch in flight at a time.
    submit: Mutex<()>,
}

impl InjectorPool {
    /// Creates a pool with `threads` long-lived workers (clamped to at
    /// least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let deques: Vec<Worker<u64>> = (0..threads).map(|_| Worker::new_lifo(LOCAL_CAP)).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(INJECTOR_CAP),
            stealers: deques.iter().map(Worker::stealer).collect(),
            state: Mutex::new(State {
                generation: 0,
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            active: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
        });
        let workers = deques
            .into_iter()
            .enumerate()
            .map(|(me, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dispatch-{me}"))
                    .spawn(move || worker_loop(&shared, me, &local))
                    .expect("spawning dispatch worker")
            })
            .collect();
        InjectorPool {
            shared,
            workers,
            submit: Mutex::new(()),
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Lifetime count of successful peer-deque steals across all jobs.
    #[must_use]
    pub fn steal_count(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Executes `f` for every cell index in `0..cells` across the pool
    /// and returns the results in index order. `f` also receives the
    /// executing worker's index (`0..threads()`) for per-worker
    /// bookkeeping (shard histograms, trace lanes); cell `i` may run on
    /// any worker, so the worker index must not influence the result.
    ///
    /// # Panics
    ///
    /// Panics if `cells` exceeds the injector capacity (65 536 — far
    /// above any admissible serve batch) or if the closure panics in a
    /// worker.
    pub fn run_indexed<T, F>(&self, cells: usize, _label: &str, f: F) -> Vec<T>
    where
        T: Send + Sync + 'static,
        F: Fn(usize, usize) -> T + Send + Sync + 'static,
    {
        if cells == 0 {
            return Vec::new();
        }
        assert!(
            cells <= INJECTOR_CAP,
            "InjectorPool batch of {cells} cells exceeds injector capacity {INJECTOR_CAP}"
        );

        let _job_guard = self.submit.lock().expect("submit lock not poisoned");
        let job = Arc::new(Job {
            f,
            slots: (0..cells).map(|_| OnceLock::new()).collect(),
        });

        // Feed every cell before publishing the job: a worker that sees
        // the new generation must already see the whole batch, so the
        // drain loop's "everything empty" exit is conclusive.
        for i in 0..cells {
            self.shared.injector.push(i as u64);
        }
        self.shared
            .active
            .store(self.workers.len(), Ordering::Release);
        {
            let mut st = self.shared.state.lock().expect("pool state not poisoned");
            st.generation += 1;
            st.job = Some(Arc::clone(&job) as Arc<dyn DispatchJob>);
            self.shared.work_cv.notify_all();
        }

        // Wait for every worker to bow out of this generation.
        {
            let mut st = self.shared.state.lock().expect("pool state not poisoned");
            while self.shared.active.load(Ordering::Acquire) > 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .expect("pool state not poisoned");
            }
            // Drop the pool's reference so the submitter's Arc is unique.
            st.job = None;
        }

        let job = Arc::try_unwrap(job)
            .unwrap_or_else(|_| unreachable!("workers release the job before finishing"));
        job.slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(|| panic!("cell {i} was never executed"))
            })
            .collect()
    }
}

impl Drop for InjectorPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state not poisoned");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize, local: &Worker<u64>) {
    let mut seen_generation = 0u64;
    loop {
        // Wait for a job we have not participated in yet (the job stays
        // published until *every* worker has, so none is missed).
        let job = {
            let mut st = shared.state.lock().expect("pool state not poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen_generation {
                    if let Some(job) = &st.job {
                        seen_generation = st.generation;
                        break Arc::clone(job);
                    }
                }
                st = shared.work_cv.wait(st).expect("pool state not poisoned");
            }
        };

        // Canonical dispatch loop: local pop, then refill from the
        // injector, then steal half a peer's deque. All cells are fed
        // before the generation is published and a worker never exits
        // with a non-empty local deque, so a full scan observing Empty
        // everywhere means this worker's part is done (cells claimed by
        // other workers finish on those workers).
        loop {
            if let Some(cell) = local.pop() {
                job.run_cell(cell as usize, me);
                continue;
            }
            match fetch(shared, me, local) {
                Some(cell) => {
                    job.run_cell(cell as usize, me);
                }
                None => break,
            }
        }

        // Release the job before announcing completion: once `active`
        // hits zero the submitter unwraps its Arc.
        drop(job);
        if shared.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _st = shared.state.lock().expect("pool state not poisoned");
            shared.done_cv.notify_all();
        }
    }
}

/// One refill attempt: injector first (FIFO fairness for request
/// latency), then the richest peer deque. Retries transient `Retry`
/// races until every source conclusively reads `Empty`.
fn fetch(shared: &Shared, me: usize, local: &Worker<u64>) -> Option<u64> {
    loop {
        let mut retry = false;
        match shared.injector.steal_batch_and_pop(local) {
            Steal::Success(cell) => return Some(cell),
            Steal::Retry => retry = true,
            Steal::Empty => {}
        }
        let richest = shared
            .stealers
            .iter()
            .enumerate()
            .filter(|&(w, _)| w != me)
            .max_by_key(|(_, s)| s.len())
            .filter(|(_, s)| !s.is_empty());
        if let Some((_, stealer)) = richest {
            match stealer.steal_batch_and_pop(local) {
                Steal::Success(cell) => {
                    shared.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(cell);
                }
                Steal::Retry | Steal::Empty => retry = true,
            }
        }
        if !retry {
            return None;
        }
        // Transient race (a steal CAS lost, or a mid-flight batch
        // move): let the winning thread run rather than spinning — this
        // host may have a single hardware thread.
        std::thread::yield_now();
    }
}

/// The pool a [`Server`](super::server::Server) fans analysis out on:
/// the classic locked-range [`SweepPool`] or the lock-free
/// [`InjectorPool`]. Cheap to clone (both variants are `Arc`s).
#[derive(Clone)]
pub enum ServePool {
    /// v1 serve path: shared packed-range queue (`SweepPool`).
    Sweep(Arc<SweepPool>),
    /// v2 serve path: injector/stealer dispatch (`InjectorPool`).
    Injector(Arc<InjectorPool>),
}

impl ServePool {
    /// Number of analysis workers.
    #[must_use]
    pub fn threads(&self) -> usize {
        match self {
            ServePool::Sweep(p) => p.threads(),
            ServePool::Injector(p) => p.threads(),
        }
    }

    /// Engine label for logs and summaries.
    #[must_use]
    pub fn engine_label(&self) -> &'static str {
        match self {
            ServePool::Sweep(_) => "sweep",
            ServePool::Injector(_) => "injector",
        }
    }

    /// Fans `0..cells` across the pool, returning results in index
    /// order; see [`InjectorPool::run_indexed`] /
    /// [`SweepPool::run_indexed`].
    pub fn run_indexed<T, F>(&self, cells: usize, label: &str, f: F) -> Vec<T>
    where
        T: Send + Sync + 'static,
        F: Fn(usize, usize) -> T + Send + Sync + 'static,
    {
        match self {
            ServePool::Sweep(p) => p.run_indexed(cells, label, f),
            ServePool::Injector(p) => p.run_indexed(cells, label, f),
        }
    }
}

impl From<Arc<SweepPool>> for ServePool {
    fn from(pool: Arc<SweepPool>) -> Self {
        ServePool::Sweep(pool)
    }
}

impl From<Arc<InjectorPool>> for ServePool {
    fn from(pool: Arc<InjectorPool>) -> Self {
        ServePool::Injector(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_cells_in_order() {
        let pool = InjectorPool::new(3);
        let out = pool.run_indexed(100, "t", |i, _w| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_cells_is_empty() {
        let pool = InjectorPool::new(2);
        let out: Vec<usize> = pool.run_indexed(0, "t", |i, _w| i);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_index_is_in_range() {
        let pool = InjectorPool::new(4);
        let workers = pool.run_indexed(64, "t", |_i, w| w);
        assert!(workers.iter().all(|&w| w < 4));
    }

    #[test]
    fn reusable_across_jobs() {
        let pool = InjectorPool::new(2);
        for round in 0..20usize {
            let out = pool.run_indexed(17, "t", move |i, _w| i + round);
            assert_eq!(out, (0..17).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn single_worker_pool_completes() {
        let pool = InjectorPool::new(1);
        let out = pool.run_indexed(32, "t", |i, _w| i);
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn batch_larger_than_local_deques() {
        // More cells than LOCAL_CAP forces multiple injector refills.
        let pool = InjectorPool::new(3);
        let cells = super::LOCAL_CAP * 3 + 7;
        let out = pool.run_indexed(cells, "t", |i, _w| i);
        assert_eq!(out, (0..cells).collect::<Vec<_>>());
    }

    #[test]
    fn serve_pool_dispatches_both_engines() {
        let engines = [
            ServePool::from(Arc::new(SweepPool::new(2))),
            ServePool::from(Arc::new(InjectorPool::new(2))),
        ];
        for pool in engines {
            let out = pool.run_indexed(25, "t", |i, _w| i * i);
            assert_eq!(out, (0..25).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(pool.threads(), 2);
        }
    }
}
