//! The JSON-lines admission protocol.
//!
//! One request per line in, one response per line out. The workspace
//! deliberately carries no serde dependency, so this module hand-rolls
//! the (tiny) subset of JSON the protocol needs: objects, strings with
//! the standard escapes, unsigned integers, and booleans. Both
//! directions are implemented here — the server decodes requests and
//! encodes responses, the load generator and the proptest suite do the
//! reverse — so round-tripping is pinned inside one file.
//!
//! ## Request
//!
//! ```json
//! {"id":7,"m":8,"priority":5,"deadline_us":20000,"source":"task period=100\n  node a 10\nend\n"}
//! {"id":8,"m":8,"hash":"9f3a77c04be21d55"}
//! {"id":9,"m":8,"base":"9f3a77c04be21d55","edits":"wcet:0.2=35; edge:0.1>3"}
//! ```
//!
//! `id` and `m` are required. `priority` (0–7, higher = more important,
//! default 4) orders load shedding; `deadline_us` (default: server
//! config) is the per-request service budget measured from *arrival*,
//! queueing included. The workload is one of: an inline `.rtp` `source`,
//! the hex content `hash` of a previously interned set, or — the `edit`
//! verb — a `base` hash plus an `edits` script describing a mutation of
//! that set (see [`EditScript`]), which the server answers from a
//! delta-patched cache entry instead of a cold miss.
//!
//! ## Response
//!
//! ```json
//! {"id":7,"verdict":"admit","level":"exact","degraded":false,"latency_us":412,"hash":"9f3a77c04be21d55","detail":""}
//! ```

use std::fmt;

/// Highest wire priority (inclusive).
pub const MAX_PRIORITY: u8 = 7;
/// Priority assumed when a request does not name one.
pub const DEFAULT_PRIORITY: u8 = 4;

/// A decoded admission request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Thread-pool size `m` to analyze admission onto.
    pub m: usize,
    /// Shedding priority, `0..=MAX_PRIORITY` (higher survives overload
    /// longer).
    pub priority: u8,
    /// Service budget in microseconds from arrival; `0` = server
    /// default.
    pub deadline_us: u64,
    /// The workload itself.
    pub body: RequestBody,
}

/// How a request names its task set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestBody {
    /// Inline `.rtp` source text.
    Source(String),
    /// Content hash of a previously interned set.
    Hash(u64),
    /// The `edit` verb: a mutation of the previously interned set
    /// `base`, described by an edit script (see [`EditScript`]).
    Edit {
        /// Content hash of the base set to patch.
        base: u64,
        /// The edit script, unparsed (validated at service time).
        script: String,
    },
}

/// One operation of an `edit` script, addressed to one task of the base
/// set.
///
/// The wire syntax is `;`-separated operations (whitespace around
/// separators is ignored):
///
/// * `wcet:T.N=W` — set node `N` of task `T` to WCET `W`;
/// * `edge:T.U>V` — insert precedence edge `U -> V` in task `T`;
/// * `node:T=W@P1+P2>S1+S2` — insert a WCET-`W` node into task `T` with
///   predecessors `P1, P2` and successors `S1, S2`;
/// * `block:T.F-J=on` / `block:T.F-J=off` — declare or dissolve the
///   blocking pair `(F, J)` in task `T`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EditScript {
    /// Task index within the base set.
    pub task: usize,
    /// The graph-level operation.
    pub op: EditScriptOp,
}

/// The graph-level half of one [`EditScript`] operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditScriptOp {
    /// `wcet:T.N=W`.
    SetWcet {
        /// Node index.
        node: usize,
        /// New WCET.
        wcet: u64,
    },
    /// `edge:T.U>V`.
    InsertEdge {
        /// Edge tail.
        from: usize,
        /// Edge head.
        to: usize,
    },
    /// `node:T=W@P1+P2>S1+S2`.
    InsertNode {
        /// WCET of the new node.
        wcet: u64,
        /// Predecessor node indices.
        preds: Vec<usize>,
        /// Successor node indices.
        succs: Vec<usize>,
    },
    /// `block:T.F-J=on|off`.
    SetBlocking {
        /// The fork node.
        fork: usize,
        /// The join node.
        join: usize,
        /// `true` to declare the pair, `false` to dissolve it.
        on: bool,
    },
}

/// Parses an `edits` script into per-task operations, in script order.
///
/// # Errors
///
/// Returns a human-readable description of the first malformed
/// operation.
pub fn parse_edit_script(script: &str) -> Result<Vec<EditScript>, String> {
    let mut ops = Vec::new();
    for raw in script.split(';') {
        let item = raw.trim();
        if item.is_empty() {
            continue;
        }
        let (verb, rest) = item
            .split_once(':')
            .ok_or_else(|| format!("edit op {item:?} is missing its ':'"))?;
        let op = match verb {
            "wcet" => {
                let (addr, wcet) = split2(rest, '=', item)?;
                let (task, node) = split2(&addr, '.', item)?;
                EditScript {
                    task: num(&task, item)?,
                    op: EditScriptOp::SetWcet {
                        node: num(&node, item)?,
                        wcet: num64(&wcet, item)?,
                    },
                }
            }
            "edge" => {
                let (task, pair) = split2(rest, '.', item)?;
                let (from, to) = split2(&pair, '>', item)?;
                EditScript {
                    task: num(&task, item)?,
                    op: EditScriptOp::InsertEdge {
                        from: num(&from, item)?,
                        to: num(&to, item)?,
                    },
                }
            }
            "node" => {
                let (task, spec) = split2(rest, '=', item)?;
                let (wcet, ends) = split2(&spec, '@', item)?;
                let (preds, succs) = split2(&ends, '>', item)?;
                EditScript {
                    task: num(&task, item)?,
                    op: EditScriptOp::InsertNode {
                        wcet: num64(&wcet, item)?,
                        preds: num_list(&preds, item)?,
                        succs: num_list(&succs, item)?,
                    },
                }
            }
            "block" => {
                let (addr, state) = split2(rest, '=', item)?;
                let (task, pair) = split2(&addr, '.', item)?;
                let (fork, join) = split2(&pair, '-', item)?;
                let on = match state.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("edit op {item:?}: unknown state {other:?}")),
                };
                EditScript {
                    task: num(&task, item)?,
                    op: EditScriptOp::SetBlocking {
                        fork: num(&fork, item)?,
                        join: num(&join, item)?,
                        on,
                    },
                }
            }
            other => return Err(format!("unknown edit verb {other:?}")),
        };
        ops.push(op);
    }
    if ops.is_empty() {
        return Err("edit script has no operations".to_string());
    }
    Ok(ops)
}

fn split2(s: &str, sep: char, ctx: &str) -> Result<(String, String), String> {
    s.split_once(sep)
        .map(|(a, b)| (a.trim().to_string(), b.trim().to_string()))
        .ok_or_else(|| format!("edit op {ctx:?} is missing its {sep:?}"))
}

fn num(s: &str, ctx: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| format!("edit op {ctx:?}: invalid index {s:?}"))
}

fn num64(s: &str, ctx: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| format!("edit op {ctx:?}: invalid value {s:?}"))
}

fn num_list(s: &str, ctx: &str) -> Result<Vec<usize>, String> {
    s.split('+').map(|part| num(part.trim(), ctx)).collect()
}

/// The verdict class of a response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerdictKind {
    /// The task set is schedulable on the requested pool.
    Admit,
    /// The task set is not admitted (deadlock, overload, or missed
    /// response-time bound).
    Reject,
    /// The ingress queue was full — backpressure, retry later.
    Busy,
    /// The circuit breaker shed this request (priority too low while
    /// the breaker is open).
    Shed,
    /// The request could not be served (parse failure, unknown hash,
    /// worker crash beyond the recovery budget).
    Error,
}

impl VerdictKind {
    /// Wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            VerdictKind::Admit => "admit",
            VerdictKind::Reject => "reject",
            VerdictKind::Busy => "busy",
            VerdictKind::Shed => "shed",
            VerdictKind::Error => "error",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "admit" => VerdictKind::Admit,
            "reject" => VerdictKind::Reject,
            "busy" => VerdictKind::Busy,
            "shed" => VerdictKind::Shed,
            "error" => VerdictKind::Error,
            _ => return None,
        })
    }
}

impl fmt::Display for VerdictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The ladder rung that produced an analysis verdict (absent for
/// busy/shed/error responses).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderLevel {
    /// Arithmetic screens: total utilization vs `m`, critical path vs
    /// deadline.
    Prefilter,
    /// Lemma 1/3 deadlock certificates plus the exact `BF` antichain.
    Deadlock,
    /// Limited-concurrency RTA (Lemma 4).
    Limited,
    /// The exact-antichain RTA — the ladder's definitive rung.
    Exact,
}

impl LadderLevel {
    /// Wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LadderLevel::Prefilter => "prefilter",
            LadderLevel::Deadlock => "deadlock",
            LadderLevel::Limited => "limited",
            LadderLevel::Exact => "exact",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "prefilter" => LadderLevel::Prefilter,
            "deadlock" => LadderLevel::Deadlock,
            "limited" => LadderLevel::Limited,
            "exact" => LadderLevel::Exact,
            _ => return None,
        })
    }
}

/// A response line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Correlation id of the request.
    pub id: u64,
    /// Verdict class.
    pub verdict: VerdictKind,
    /// Ladder rung that decided (analysis verdicts only).
    pub level: Option<LadderLevel>,
    /// Whether the deadline budget cut the ladder short of its
    /// definitive rung. A degraded *admit* is still sound (see the
    /// ladder docs); a degraded *reject* may be pessimistic.
    pub degraded: bool,
    /// Observed service latency (arrival to verdict), microseconds.
    pub latency_us: u64,
    /// Content hash of the interned set (analysis verdicts only) —
    /// resubmit with `"hash"` to skip parsing.
    pub hash: Option<u64>,
    /// Human-readable detail (reject reason, error cause).
    pub detail: String,
}

/// Encodes a response as one JSON line (no trailing newline).
#[must_use]
pub fn encode_response(r: &Response) -> String {
    let mut out = String::with_capacity(96 + r.detail.len());
    out.push_str("{\"id\":");
    out.push_str(&r.id.to_string());
    out.push_str(",\"verdict\":\"");
    out.push_str(r.verdict.name());
    out.push('"');
    if let Some(level) = r.level {
        out.push_str(",\"level\":\"");
        out.push_str(level.name());
        out.push('"');
    }
    out.push_str(",\"degraded\":");
    out.push_str(if r.degraded { "true" } else { "false" });
    out.push_str(",\"latency_us\":");
    out.push_str(&r.latency_us.to_string());
    if let Some(h) = r.hash {
        out.push_str(",\"hash\":\"");
        out.push_str(&format!("{h:016x}"));
        out.push('"');
    }
    out.push_str(",\"detail\":\"");
    escape_into(&r.detail, &mut out);
    out.push_str("\"}");
    out
}

/// Encodes a request as one JSON line (no trailing newline). Used by the
/// load generator and the round-trip tests.
#[must_use]
pub fn encode_request(r: &Request) -> String {
    let mut out = String::with_capacity(64);
    out.push_str("{\"id\":");
    out.push_str(&r.id.to_string());
    out.push_str(",\"m\":");
    out.push_str(&r.m.to_string());
    out.push_str(",\"priority\":");
    out.push_str(&r.priority.to_string());
    out.push_str(",\"deadline_us\":");
    out.push_str(&r.deadline_us.to_string());
    match &r.body {
        RequestBody::Source(src) => {
            out.push_str(",\"source\":\"");
            escape_into(src, &mut out);
            out.push('"');
        }
        RequestBody::Hash(h) => {
            out.push_str(",\"hash\":\"");
            out.push_str(&format!("{h:016x}"));
            out.push('"');
        }
        RequestBody::Edit { base, script } => {
            out.push_str(",\"base\":\"");
            out.push_str(&format!("{base:016x}"));
            out.push_str("\",\"edits\":\"");
            escape_into(script, &mut out);
            out.push('"');
        }
    }
    out.push('}');
    out
}

/// Decodes one request line.
///
/// # Errors
///
/// Returns a human-readable description of the first problem found.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let obj = parse_object(line)?;
    let id = require_u64(&obj, "id")?;
    let m = usize::try_from(require_u64(&obj, "m")?).map_err(|_| "m out of range".to_string())?;
    if m == 0 {
        return Err("m must be positive".to_string());
    }
    let priority = match get(&obj, "priority") {
        None => DEFAULT_PRIORITY,
        Some(Json::Num(n)) => u8::try_from(*n)
            .ok()
            .filter(|p| *p <= MAX_PRIORITY)
            .ok_or_else(|| format!("priority must be 0..={MAX_PRIORITY}"))?,
        Some(_) => return Err("priority must be a number".to_string()),
    };
    let deadline_us = match get(&obj, "deadline_us") {
        None => 0,
        Some(Json::Num(n)) => *n,
        Some(_) => return Err("deadline_us must be a number".to_string()),
    };
    let body = match (
        get(&obj, "source"),
        get(&obj, "hash"),
        get(&obj, "base"),
        get(&obj, "edits"),
    ) {
        (Some(Json::Str(src)), None, None, None) => RequestBody::Source(src.clone()),
        (None, Some(Json::Str(h)), None, None) => RequestBody::Hash(parse_hash(h)?),
        (None, None, Some(Json::Str(b)), Some(Json::Str(script))) => RequestBody::Edit {
            base: parse_hash(b)?,
            script: script.clone(),
        },
        (None, None, Some(_), None) => return Err("edit request needs edits".to_string()),
        (None, None, None, Some(_)) => return Err("edit request needs base".to_string()),
        (None, None, None, None) => {
            return Err("request needs source, hash, or base+edits".to_string())
        }
        _ => {
            return Err("request must carry exactly one of source, hash, or base+edits".to_string())
        }
    };
    Ok(Request {
        id,
        m,
        priority,
        deadline_us,
        body,
    })
}

/// Decodes one response line.
///
/// # Errors
///
/// Returns a human-readable description of the first problem found.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let obj = parse_object(line)?;
    let id = require_u64(&obj, "id")?;
    let verdict = match get(&obj, "verdict") {
        Some(Json::Str(s)) => {
            VerdictKind::parse(s).ok_or_else(|| format!("unknown verdict {s:?}"))?
        }
        _ => return Err("missing verdict".to_string()),
    };
    let level = match get(&obj, "level") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => {
            Some(LadderLevel::parse(s).ok_or_else(|| format!("unknown level {s:?}"))?)
        }
        Some(_) => return Err("level must be a string".to_string()),
    };
    let degraded = match get(&obj, "degraded") {
        Some(Json::Bool(b)) => *b,
        None => false,
        Some(_) => return Err("degraded must be a boolean".to_string()),
    };
    let latency_us = match get(&obj, "latency_us") {
        Some(Json::Num(n)) => *n,
        None => 0,
        Some(_) => return Err("latency_us must be a number".to_string()),
    };
    let hash = match get(&obj, "hash") {
        None | Some(Json::Null) => None,
        Some(Json::Str(h)) => Some(parse_hash(h)?),
        Some(_) => return Err("hash must be a hex string".to_string()),
    };
    let detail = match get(&obj, "detail") {
        Some(Json::Str(s)) => s.clone(),
        None => String::new(),
        Some(_) => return Err("detail must be a string".to_string()),
    };
    Ok(Response {
        id,
        verdict,
        level,
        degraded,
        latency_us,
        hash,
        detail,
    })
}

fn parse_hash(h: &str) -> Result<u64, String> {
    u64::from_str_radix(h, 16).map_err(|_| format!("invalid content hash {h:?}"))
}

/// Best-effort extraction of the `id` field from a line that may not be
/// a valid request, so even a malformed submission can be answered with
/// a correlated `error` response. Returns 0 when no id is recoverable.
#[must_use]
pub fn probe_id(line: &str) -> u64 {
    parse_object(line)
        .ok()
        .and_then(|obj| match get(&obj, "id") {
            Some(Json::Num(n)) => Some(*n),
            _ => None,
        })
        .unwrap_or(0)
}

// ---------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------

/// The JSON subset the protocol uses.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers only — every number on this wire is one.
    Num(u64),
    Str(String),
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn require_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    match get(obj, key) {
        Some(Json::Num(n)) => Ok(*n),
        Some(_) => Err(format!("{key} must be a number")),
        None => Err(format!("missing {key}")),
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a single top-level JSON object into its key/value pairs.
fn parse_object(line: &str) -> Result<Vec<(String, Json)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let obj = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(obj)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn object(&mut self) -> Result<Vec<(String, Json)>, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            out.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            _ => Err(format!("unexpected value at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("unexpected value at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|_| format!("number out of range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            // The protocol never emits surrogate pairs;
                            // reject rather than mis-decode them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| "surrogate \\u escape".to_string())?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are trustworthy).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request {
                id: 7,
                m: 8,
                priority: 5,
                deadline_us: 20_000,
                body: RequestBody::Source("task period=100\n  node a 10\nend\n".to_string()),
            },
            Request {
                id: u64::MAX,
                m: 1,
                priority: 0,
                deadline_us: 0,
                body: RequestBody::Hash(0x9f3a_77c0_4be2_1d55),
            },
            Request {
                id: 9,
                m: 8,
                priority: 7,
                deadline_us: 50,
                body: RequestBody::Edit {
                    base: 0x0000_00c0_ffee_0001,
                    script: "wcet:0.2=35; edge:0.1>3".to_string(),
                },
            },
        ];
        for r in &reqs {
            let line = encode_request(r);
            assert_eq!(&parse_request(&line).unwrap(), r, "line: {line}");
        }
    }

    #[test]
    fn response_round_trips() {
        let resp = Response {
            id: 3,
            verdict: VerdictKind::Reject,
            level: Some(LadderLevel::Deadlock),
            degraded: true,
            latency_us: 412,
            hash: Some(1),
            detail: "antichain \"BF\" ≥ m\nnext line\t".to_string(),
        };
        let line = encode_response(&resp);
        assert_eq!(parse_response(&line).unwrap(), resp, "line: {line}");
        let busy = Response {
            id: 4,
            verdict: VerdictKind::Busy,
            level: None,
            degraded: false,
            latency_us: 0,
            hash: None,
            detail: String::new(),
        };
        assert_eq!(parse_response(&encode_response(&busy)).unwrap(), busy);
    }

    #[test]
    fn defaults_and_validation() {
        let r = parse_request(r#"{"id":1,"m":4,"source":"x"}"#).unwrap();
        assert_eq!(r.priority, DEFAULT_PRIORITY);
        assert_eq!(r.deadline_us, 0);
        assert!(parse_request(r#"{"m":4,"source":"x"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"source":"x"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"m":0,"source":"x"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"m":4,"priority":9,"source":"x"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"m":4,"source":"x","hash":"ff"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"m":4}"#).is_err());
        assert!(parse_request(r#"{"id":1,"m":4,"hash":"zz"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"m":4,"base":"ff"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"m":4,"edits":"wcet:0.0=1"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"m":4,"source":"x","base":"ff","edits":"e"}"#).is_err());
        let edit = parse_request(r#"{"id":1,"m":4,"base":"ff","edits":"wcet:0.0=1"}"#).unwrap();
        assert_eq!(
            edit.body,
            RequestBody::Edit {
                base: 0xff,
                script: "wcet:0.0=1".to_string(),
            }
        );
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"id":1,"m":4,"source":"x"} extra"#).is_err());
    }

    #[test]
    fn edit_scripts_parse() {
        let ops = parse_edit_script("wcet:0.2=35; edge:1.0>3 ;node:2=7@0+1>3+4; block:0.1-4=off;")
            .unwrap();
        assert_eq!(
            ops,
            vec![
                EditScript {
                    task: 0,
                    op: EditScriptOp::SetWcet { node: 2, wcet: 35 },
                },
                EditScript {
                    task: 1,
                    op: EditScriptOp::InsertEdge { from: 0, to: 3 },
                },
                EditScript {
                    task: 2,
                    op: EditScriptOp::InsertNode {
                        wcet: 7,
                        preds: vec![0, 1],
                        succs: vec![3, 4],
                    },
                },
                EditScript {
                    task: 0,
                    op: EditScriptOp::SetBlocking {
                        fork: 1,
                        join: 4,
                        on: false,
                    },
                },
            ]
        );
        assert_eq!(
            parse_edit_script("block:0.1-4=on").unwrap()[0].op,
            EditScriptOp::SetBlocking {
                fork: 1,
                join: 4,
                on: true,
            }
        );
        for bad in [
            "",
            " ; ",
            "wcet:0.2",
            "wcet:02=5",
            "wcet:a.b=5",
            "edge:0.1",
            "node:0=5@1",
            "node:0=5@x>2",
            "block:0.1-2=maybe",
            "teleport:0.1=2",
        ] {
            assert!(parse_edit_script(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escapes_decode() {
        let r = parse_request(r#"{"id":1,"m":2,"source":"a\nb\t\"q\"\\A"}"#).unwrap();
        assert_eq!(r.body, RequestBody::Source("a\nb\t\"q\"\\A".to_string()));
    }
}
