//! Bounded ingress queue with explicit backpressure.
//!
//! The queue holds accepted-but-unserved requests. Its capacity is a
//! hard bound: once full, [`IngressQueue::push`] fails *immediately*
//! and the server answers `busy` — overload surfaces as explicit
//! backpressure to the client, never as unbounded memory growth or
//! silently ballooning latency. (The classic alternative — an unbounded
//! queue — converts overload into queueing delay that grows without
//! limit while every request still "succeeds"; this module is the
//! design's refusal to do that.)
//!
//! The dispatcher side blocks on [`IngressQueue::pop_batch`] until work
//! or shutdown; batches drain up to `max` entries at once so the sweep
//! pool can fan a whole batch across its workers.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Queue state shared between ingest and dispatcher.
struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
    /// High-water mark of queue depth (observability).
    peak: usize,
    rejected: u64,
}

/// A bounded MPSC queue that rejects instead of growing.
pub struct IngressQueue<T> {
    cap: usize,
    state: Mutex<State<T>>,
    cv: Condvar,
}

impl<T> IngressQueue<T> {
    /// Creates a queue holding at most `cap` entries (clamped to ≥ 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        IngressQueue {
            cap: cap.max(1),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
                peak: 0,
                rejected: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Enqueues `item`, or returns it when the queue is full (explicit
    /// backpressure) or closed.
    ///
    /// # Errors
    ///
    /// The rejected item is handed back so the caller can answer the
    /// client.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().expect("queue lock not poisoned");
        if st.closed || st.queue.len() >= self.cap {
            st.rejected += 1;
            return Err(item);
        }
        st.queue.push_back(item);
        st.peak = st.peak.max(st.queue.len());
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks until at least one entry is available, then drains up to
    /// `max` entries. Returns an empty vector only after
    /// [`IngressQueue::close`] once the queue has fully drained.
    #[must_use]
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let max = max.max(1);
        let mut st = self.state.lock().expect("queue lock not poisoned");
        loop {
            if !st.queue.is_empty() {
                let take = st.queue.len().min(max);
                return st.queue.drain(..take).collect();
            }
            if st.closed {
                return Vec::new();
            }
            st = self.cv.wait(st).expect("queue lock not poisoned");
        }
    }

    /// Closes the queue: future pushes fail, and `pop_batch` returns
    /// empty once the backlog is drained.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("queue lock not poisoned");
        st.closed = true;
        self.cv.notify_all();
    }

    /// Current depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("queue lock not poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(peak depth, rejected count)` so far.
    #[must_use]
    pub fn pressure(&self) -> (usize, u64) {
        let st = self.state.lock().expect("queue lock not poisoned");
        (st.peak, st.rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_queue_rejects_immediately() {
        let q = IngressQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pressure(), (2, 1));
        // Draining frees capacity again.
        assert_eq!(q.pop_batch(10), vec![1, 2]);
        assert!(q.push(4).is_ok());
    }

    #[test]
    fn batches_respect_max() {
        let q = IngressQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_batch(3), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(3), vec![3, 4]);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = IngressQueue::new(8);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(2));
        assert_eq!(q.pop_batch(4), vec![1]);
        assert!(q.pop_batch(4).is_empty());
    }

    #[test]
    fn pop_blocks_until_push() {
        use std::sync::Arc;
        let q = Arc::new(IngressQueue::new(4));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_batch(4));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(42).unwrap();
        assert_eq!(t.join().unwrap(), vec![42]);
    }
}
