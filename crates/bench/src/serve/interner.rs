//! Content-hashed task-set interner with bounded capacity.
//!
//! Structurally identical submissions — byte-different sources that
//! parse to the same DAGs, periods, and deadlines — resolve to one
//! shared [`Arc<TaskSet>`], so every request after the first reuses the
//! graphs' `DerivedCache` (reachability, delay profiles, antichains)
//! instead of recomputing it. Definitive (non-degraded) ladder outcomes
//! are memoized per `(set, m)` on the same entry, which turns repeat
//! submissions into table lookups.
//!
//! Capacity is bounded: inserting beyond `capacity` evicts the
//! least-recently-used entry, so server RSS stays proportional to the
//! configured cap regardless of how many distinct workloads clients
//! submit. Eviction scans for the LRU entry — `O(capacity)` with small
//! caps, which is the regime the server runs in.
//!
//! Entries can be *poisoned* (by the fault plan's `PoisonCacheEntry`
//! injection, or by an operator tool): a poisoned entry is reported to
//! exactly one observer via [`InternError::Poisoned`] and evicted, so
//! the supervisor's retry re-parses from source and repopulates a clean
//! entry.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rtpool_core::textfmt::{parse_task_set, ParseTaskError};
use rtpool_core::TaskSet;

use super::protocol::LadderLevel;

/// A memoized definitive ladder outcome for one `(set, m)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoOutcome {
    /// Whether the set was admitted.
    pub admit: bool,
    /// The rung that decided.
    pub level: LadderLevel,
}

/// Why [`Interner::intern`] / [`Interner::lookup`] failed.
#[derive(Clone, Debug, PartialEq)]
pub enum InternError {
    /// The inline source did not parse.
    Parse(ParseTaskError),
    /// The entry existed but was poisoned; it has been evicted. Retrying
    /// with the source re-parses cleanly; retrying by hash alone cannot.
    Poisoned,
    /// A hash-only request named a set the interner does not hold
    /// (never seen, or evicted).
    UnknownHash,
}

impl std::fmt::Display for InternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InternError::Parse(e) => write!(f, "parse error: {e}"),
            InternError::Poisoned => f.write_str("cache entry was poisoned"),
            InternError::UnknownHash => f.write_str("unknown content hash"),
        }
    }
}

struct Entry {
    set: Arc<TaskSet>,
    last_used: u64,
    poisoned: bool,
    /// Definitive outcomes by pool size `m` (tiny in practice).
    memo: Vec<(usize, MemoOutcome)>,
}

#[derive(Default)]
struct Stats {
    hits: u64,
    misses: u64,
    evictions: u64,
    memo_hits: u64,
    delta_hits: u64,
}

/// Point-in-time interner statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternerStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Interns/lookups answered from a resident entry.
    pub hits: u64,
    /// Interns that had to parse.
    pub misses: u64,
    /// Entries evicted (LRU pressure or poison).
    pub evictions: u64,
    /// Requests answered from the per-`m` verdict memo.
    pub memo_hits: u64,
    /// `edit` requests answered from a delta-patched entry: the base set
    /// was resident, so the patched set entered the cache with its
    /// `DerivedCache` carried over by `Dag::edit` instead of rebuilt.
    pub delta_hits: u64,
}

struct State {
    entries: HashMap<u64, Entry>,
    tick: u64,
    stats: Stats,
}

/// The bounded content-hash interner shared by all service workers.
pub struct Interner {
    capacity: usize,
    state: Mutex<State>,
}

impl Interner {
    /// Creates an interner holding at most `capacity` distinct sets
    /// (clamped to at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Interner {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                entries: HashMap::new(),
                tick: 0,
                stats: Stats::default(),
            }),
        }
    }

    /// The structural content hash of a task set: every task's DAG hash
    /// combined with its period and deadline, in priority order.
    #[must_use]
    pub fn hash_set(set: &TaskSet) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(set.len() as u64);
        for (_, task) in set.iter() {
            mix(task.dag().content_hash());
            mix(task.period());
            mix(task.deadline());
        }
        h
    }

    /// Parses `source` and interns the result, returning the content
    /// hash and the shared set. A structurally identical resident set is
    /// reused (its `DerivedCache` and verdict memo included); a poisoned
    /// resident entry is evicted and reported once.
    ///
    /// # Errors
    ///
    /// [`InternError::Parse`] when the source is invalid,
    /// [`InternError::Poisoned`] when the resident entry was poisoned.
    pub fn intern(&self, source: &str) -> Result<(u64, Arc<TaskSet>), InternError> {
        let parsed = parse_task_set(source).map_err(InternError::Parse)?;
        let hash = Interner::hash_set(&parsed);
        let mut st = self.state.lock().expect("interner lock not poisoned");
        st.tick += 1;
        let tick = st.tick;
        let mut resident = None;
        let mut poisoned = false;
        if let Some(entry) = st.entries.get_mut(&hash) {
            if entry.poisoned {
                poisoned = true;
            } else {
                entry.last_used = tick;
                resident = Some(Arc::clone(&entry.set));
            }
        }
        if poisoned {
            st.entries.remove(&hash);
            st.stats.evictions += 1;
            return Err(InternError::Poisoned);
        }
        if let Some(set) = resident {
            st.stats.hits += 1;
            return Ok((hash, set));
        }
        st.stats.misses += 1;
        let set = Arc::new(parsed);
        if st.entries.len() >= self.capacity {
            let lru = st
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&h, _)| h)
                .expect("non-empty at capacity");
            st.entries.remove(&lru);
            st.stats.evictions += 1;
        }
        st.entries.insert(
            hash,
            Entry {
                set: Arc::clone(&set),
                last_used: tick,
                poisoned: false,
                memo: Vec::new(),
            },
        );
        Ok((hash, set))
    }

    /// Interns an already-built set (the `edit` verb's delta-patched
    /// result), returning its content hash and the shared set. A
    /// structurally identical resident set is reused — memo included —
    /// so repeated identical edits of the same base hit the verdict
    /// memo. A poisoned resident entry is replaced by the fresh set.
    pub fn intern_set(&self, set: TaskSet) -> (u64, Arc<TaskSet>) {
        let hash = Interner::hash_set(&set);
        let mut st = self.state.lock().expect("interner lock not poisoned");
        st.tick += 1;
        let tick = st.tick;
        let mut resident = None;
        let mut poisoned = false;
        if let Some(entry) = st.entries.get_mut(&hash) {
            if entry.poisoned {
                poisoned = true;
            } else {
                entry.last_used = tick;
                resident = Some(Arc::clone(&entry.set));
            }
        }
        if poisoned {
            st.entries.remove(&hash);
            st.stats.evictions += 1;
        }
        if let Some(shared) = resident {
            st.stats.hits += 1;
            return (hash, shared);
        }
        st.stats.misses += 1;
        let shared = Arc::new(set);
        if st.entries.len() >= self.capacity {
            let lru = st
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&h, _)| h)
                .expect("non-empty at capacity");
            st.entries.remove(&lru);
            st.stats.evictions += 1;
        }
        st.entries.insert(
            hash,
            Entry {
                set: Arc::clone(&shared),
                last_used: tick,
                poisoned: false,
                memo: Vec::new(),
            },
        );
        (hash, shared)
    }

    /// Counts one `edit` request answered from a delta-patched entry.
    pub fn record_delta_hit(&self) {
        let mut st = self.state.lock().expect("interner lock not poisoned");
        st.stats.delta_hits += 1;
    }

    /// Resolves a hash-only request.
    ///
    /// # Errors
    ///
    /// [`InternError::UnknownHash`] when absent,
    /// [`InternError::Poisoned`] when the entry was poisoned (it is
    /// evicted).
    pub fn lookup(&self, hash: u64) -> Result<Arc<TaskSet>, InternError> {
        let mut st = self.state.lock().expect("interner lock not poisoned");
        st.tick += 1;
        let tick = st.tick;
        let mut resident = None;
        let mut poisoned = false;
        match st.entries.get_mut(&hash) {
            None => {}
            Some(entry) if entry.poisoned => poisoned = true,
            Some(entry) => {
                entry.last_used = tick;
                resident = Some(Arc::clone(&entry.set));
            }
        }
        if poisoned {
            st.entries.remove(&hash);
            st.stats.evictions += 1;
            return Err(InternError::Poisoned);
        }
        match resident {
            Some(set) => {
                st.stats.hits += 1;
                Ok(set)
            }
            None => {
                st.stats.misses += 1;
                Err(InternError::UnknownHash)
            }
        }
    }

    /// Marks the entry poisoned (fault injection). No-op when absent.
    pub fn poison(&self, hash: u64) {
        let mut st = self.state.lock().expect("interner lock not poisoned");
        if let Some(entry) = st.entries.get_mut(&hash) {
            entry.poisoned = true;
        }
    }

    /// Records a definitive (non-degraded) outcome for `(hash, m)`.
    /// No-op when the entry has been evicted meanwhile.
    pub fn memoize(&self, hash: u64, m: usize, outcome: MemoOutcome) {
        let mut st = self.state.lock().expect("interner lock not poisoned");
        if let Some(entry) = st.entries.get_mut(&hash) {
            if !entry.memo.iter().any(|(mm, _)| *mm == m) {
                entry.memo.push((m, outcome));
            }
        }
    }

    /// A memoized definitive outcome for `(hash, m)`, if present.
    #[must_use]
    pub fn memoized(&self, hash: u64, m: usize) -> Option<MemoOutcome> {
        let mut st = self.state.lock().expect("interner lock not poisoned");
        st.tick += 1;
        let tick = st.tick;
        let found = st.entries.get_mut(&hash).and_then(|entry| {
            if entry.poisoned {
                return None;
            }
            entry.last_used = tick;
            entry.memo.iter().find(|(mm, _)| *mm == m).map(|&(_, o)| o)
        });
        if found.is_some() {
            st.stats.memo_hits += 1;
        }
        found
    }

    /// Current statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> InternerStats {
        let st = self.state.lock().expect("interner lock not poisoned");
        InternerStats {
            entries: st.entries.len(),
            hits: st.stats.hits,
            misses: st.stats.misses,
            evictions: st.stats.evictions,
            memo_hits: st.stats.memo_hits,
            delta_hits: st.stats.delta_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC_A: &str = "task period=100\n  node a 10\n  node b 20\n  edge a b\nend\n";
    /// Same structure as `SRC_A` (names and formatting differ).
    const SRC_A2: &str = "# comment\ntask period=100\n  node x 10\n  node y 20\n  edge x y\nend\n";
    const SRC_B: &str = "task period=50\n  node a 5\nend\n";

    #[test]
    fn structural_sharing() {
        let interner = Interner::new(8);
        let (h1, s1) = interner.intern(SRC_A).unwrap();
        let (h2, s2) = interner.intern(SRC_A2).unwrap();
        assert_eq!(h1, h2);
        assert!(
            Arc::ptr_eq(&s1, &s2),
            "structurally equal sets share one Arc"
        );
        let (h3, _) = interner.intern(SRC_B).unwrap();
        assert_ne!(h1, h3);
        let stats = interner.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
    }

    #[test]
    fn lookup_and_memo() {
        let interner = Interner::new(8);
        let (h, s) = interner.intern(SRC_A).unwrap();
        assert!(Arc::ptr_eq(&interner.lookup(h).unwrap(), &s));
        assert_eq!(
            interner.lookup(12345).unwrap_err(),
            InternError::UnknownHash
        );
        assert_eq!(interner.memoized(h, 4), None);
        let out = MemoOutcome {
            admit: true,
            level: LadderLevel::Exact,
        };
        interner.memoize(h, 4, out);
        assert_eq!(interner.memoized(h, 4), Some(out));
        assert_eq!(interner.memoized(h, 8), None);
        assert_eq!(interner.stats().memo_hits, 1);
    }

    #[test]
    fn capacity_evicts_lru() {
        let interner = Interner::new(2);
        let (ha, _) = interner.intern(SRC_A).unwrap();
        let (hb, _) = interner.intern(SRC_B).unwrap();
        // Touch A so B is the LRU.
        interner.lookup(ha).unwrap();
        let third = "task period=7\n  node z 1\nend\n";
        let (hc, _) = interner.intern(third).unwrap();
        assert!(interner.lookup(ha).is_ok());
        assert!(interner.lookup(hc).is_ok());
        assert_eq!(interner.lookup(hb).unwrap_err(), InternError::UnknownHash);
        assert_eq!(interner.stats().entries, 2);
        assert_eq!(interner.stats().evictions, 1);
    }

    #[test]
    fn poison_is_reported_once_then_heals() {
        let interner = Interner::new(8);
        let (h, _) = interner.intern(SRC_A).unwrap();
        interner.poison(h);
        assert_eq!(interner.memoized(h, 4), None);
        assert_eq!(interner.lookup(h).unwrap_err(), InternError::Poisoned);
        // The poisoned entry is gone; re-interning heals it.
        assert_eq!(interner.lookup(h).unwrap_err(), InternError::UnknownHash);
        let (h2, _) = interner.intern(SRC_A).unwrap();
        assert_eq!(h, h2);
        assert!(interner.lookup(h).is_ok());
    }

    #[test]
    fn intern_set_shares_with_source_interning() {
        let interner = Interner::new(8);
        let (h1, s1) = interner.intern(SRC_A).unwrap();
        // Re-interning the same structure as a built set reuses the
        // resident entry (memo included).
        interner.memoize(
            h1,
            4,
            MemoOutcome {
                admit: true,
                level: LadderLevel::Exact,
            },
        );
        let rebuilt = (*s1).clone();
        let (h2, s2) = interner.intern_set(rebuilt);
        assert_eq!(h1, h2);
        assert!(Arc::ptr_eq(&s1, &s2));
        assert!(interner.memoized(h2, 4).is_some());
        interner.record_delta_hit();
        assert_eq!(interner.stats().delta_hits, 1);
    }

    #[test]
    fn parse_errors_surface() {
        let interner = Interner::new(8);
        assert!(matches!(
            interner.intern("task period=\nend"),
            Err(InternError::Parse(_))
        ));
    }
}
