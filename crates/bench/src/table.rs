//! Plain-text and CSV rendering of experiment series.

use std::fmt::Write as _;

use crate::fig2::{Inset, SeriesPoint};

/// Renders a series as an aligned text table (the shape the paper's
/// plots encode).
#[must_use]
pub fn render_text(inset: Inset, series: &[SeriesPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2({}) — {}",
        inset.letter(),
        inset.description()
    );
    let _ = writeln!(
        out,
        "  proposed: {}\n  baseline: {}",
        inset.proposed_label(),
        inset.baseline_label()
    );
    let _ = writeln!(
        out,
        "{:>6} | {:>10} | {:>10} | {:>8} | {:>7}",
        inset.x_label(),
        "proposed",
        "baseline",
        "samples",
        "skipped"
    );
    let _ = writeln!(out, "{}", "-".repeat(6 + 10 + 10 + 8 + 7 + 12));
    for p in series {
        // Empty points (no sample survived the budgets) carry no ratio;
        // printing their 0.0 placeholders would fake a baseline of 0.
        if p.is_empty() {
            let _ = writeln!(out, "{:>6} | (no samples survived the budgets)", p.x);
            continue;
        }
        let _ = writeln!(
            out,
            "{:>6} | {:>10.3} | {:>10.3} | {:>8} | {:>7}",
            p.x, p.proposed, p.baseline, p.samples, p.skipped
        );
    }
    out
}

/// Renders a series as CSV with a header row.
#[must_use]
pub fn render_csv(inset: Inset, series: &[SeriesPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "inset,{},proposed_ratio,baseline_ratio,samples,skipped,errors",
        inset.x_label()
    );
    for p in series {
        // Empty points are omitted rather than emitted with placeholder
        // ratios (see `SeriesPoint::is_empty`).
        if p.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "{},{},{:.6},{:.6},{},{},{}",
            inset.letter(),
            p.x,
            p.proposed,
            p.baseline,
            p.samples,
            p.skipped,
            p.errors
        );
    }
    out
}

/// Renders a sparkline-style ASCII plot of the two ratio curves, for a
/// quick visual check of the series' shape in a terminal.
#[must_use]
pub fn render_ascii_plot(series: &[SeriesPoint]) -> String {
    const HEIGHT: usize = 10;
    let mut out = String::new();
    for row in (0..=HEIGHT).rev() {
        let threshold = row as f64 / HEIGHT as f64;
        let _ = write!(out, "{threshold:>5.1} |");
        for p in series {
            let prop = p.proposed >= threshold;
            let base = p.baseline >= threshold;
            let ch = match (prop, base) {
                (true, true) => '#',
                (false, true) => '·',
                (true, false) => 'o', // proposed above baseline: unexpected
                (false, false) => ' ',
            };
            let _ = write!(out, " {ch} ");
        }
        out.push('\n');
    }
    let _ = write!(out, "      +");
    for _ in series {
        let _ = write!(out, "---");
    }
    out.push('\n');
    let _ = write!(out, "       ");
    for p in series {
        let _ = write!(out, "{:^3}", p.x);
    }
    out.push('\n');
    let _ = writeln!(out, "       (# both, · baseline only)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> Vec<SeriesPoint> {
        vec![
            SeriesPoint {
                x: 1,
                proposed: 0.1,
                baseline: 1.0,
                samples: 100,
                skipped: 0,
                errors: 0,
            },
            SeriesPoint {
                x: 2,
                proposed: 0.85,
                baseline: 1.0,
                samples: 100,
                skipped: 3,
                errors: 0,
            },
        ]
    }

    fn empty_point() -> SeriesPoint {
        SeriesPoint {
            x: 3,
            proposed: 0.0,
            baseline: 0.0,
            samples: 0,
            skipped: 100,
            errors: 0,
        }
    }

    #[test]
    fn text_table_contains_all_points() {
        let s = render_text(Inset::A, &sample_series());
        assert!(s.contains("Figure 2(a)"));
        assert!(s.contains("0.100"));
        assert!(s.contains("0.850"));
        assert!(s.contains("l_max"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = render_csv(Inset::C, &sample_series());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("inset,m,"));
        assert!(lines[0].ends_with(",errors"));
        assert!(lines[1].starts_with("c,1,0.100000,1.000000,100,0,0"));
    }

    #[test]
    fn empty_points_are_skipped_by_renderers() {
        let mut series = sample_series();
        series.push(empty_point());
        let text = render_text(Inset::A, &series);
        assert!(text.contains("no samples survived"));
        // The placeholder ratios of the empty point must never render.
        assert!(!text.contains("0.000 |"));
        let csv = render_csv(Inset::A, &series);
        assert_eq!(csv.lines().count(), 3, "empty point must be omitted");
        assert!(!csv.contains("a,3,"));
    }

    #[test]
    fn ascii_plot_renders() {
        let s = render_ascii_plot(&sample_series());
        assert!(s.contains('#'));
        assert!(s.contains('·'));
    }
}
