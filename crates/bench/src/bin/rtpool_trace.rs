//! Unified trace tooling: runs a `.rtp` workload under the simulator or
//! the native thread pool with event tracing enabled, then summarizes,
//! renders, or exports the trace; also validates exported traces.
//!
//! ```text
//! rtpool-trace run <workload.rtp> [--engine sim|exec]
//!              [--policy global|partitioned] [--pool v1|v2|both] [--m N]
//!              [--horizon H] [--format summary|ascii|chrome|csv]
//!              [--out PATH] [--time-scale-us U] [--timeout-ms T]
//! rtpool-trace validate <trace.json>
//! ```
//!
//! `run` defaults: simulator, global policy, `m = 4`, one synchronous
//! job per task, summary on stdout. `--horizon H` (sim only) switches to
//! periodic releases up to `H`. Under `--engine exec` each task's DAG
//! runs as one job on its own pool and yields one trace per task (with
//! `--out`, files are suffixed `.task<i>`); `--pool v1|v2` selects the
//! pool's dispatch engine (default `v1`, the mutex/condvar engine; `v2`
//! is the lock-free injector/stealer engine — both emit the same trace
//! schema, and `--pool both` runs every task under *both* engines and
//! prints a per-task table comparing their NodeStart→NodeEnd latency
//! percentiles, backed by the trace metrics histograms);
//! `--time-scale-us` sets the
//! wall-clock length of one WCET unit (default 100 µs), and
//! `--timeout-ms` bounds each task's wall-clock run via the pool
//! watchdog (default 10 000 ms) — a workload that deadlocks is reported
//! as a stall with its partial trace instead of hanging the tool.
//!
//! `validate` parses a Chrome trace-event JSON exported by this tool and
//! checks the schema invariants ([`Trace::validate`]): exit code 0 when
//! clean, 1 when defects are found, 2 on parse/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use rtpool_core::partition::{algorithm1, NodeMapping};
use rtpool_core::textfmt::parse_task_set;
use rtpool_core::TaskSet;
use rtpool_exec::{Engine as PoolEngine, ExecError, PoolConfig, QueueDiscipline, ThreadPool};
use rtpool_sim::{SchedulingPolicy, SimConfig};
use rtpool_trace::{
    from_chrome_json, to_chrome_json, to_csv, LatencyHistogram, MetricsRegistry, Trace,
    TraceAnalysis,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Engine {
    Sim,
    Exec,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Policy {
    Global,
    Partitioned,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum PoolChoice {
    One(PoolEngine),
    Both,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Summary,
    Ascii,
    Chrome,
    Csv,
}

struct RunArgs {
    workload: PathBuf,
    engine: Engine,
    policy: Policy,
    pool: PoolChoice,
    m: usize,
    horizon: Option<u64>,
    format: Format,
    out: Option<PathBuf>,
    time_scale: Duration,
    timeout: Duration,
}

fn usage() -> &'static str {
    "usage: rtpool-trace run <workload.rtp> [--engine sim|exec] \
     [--policy global|partitioned] [--pool v1|v2|both] [--m N] [--horizon H] \
     [--format summary|ascii|chrome|csv] [--out PATH] [--time-scale-us U] \
     [--timeout-ms T]\n\
     \x20      rtpool-trace validate <trace.json>"
}

fn parse_run_args(mut it: std::env::Args) -> Result<RunArgs, String> {
    let workload = it.next().ok_or("missing workload path")?;
    let mut args = RunArgs {
        workload: PathBuf::from(workload),
        engine: Engine::Sim,
        policy: Policy::Global,
        pool: PoolChoice::One(PoolEngine::default()),
        m: 4,
        horizon: None,
        format: Format::Summary,
        out: None,
        time_scale: Duration::from_micros(100),
        timeout: Duration::from_secs(10),
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--engine" => {
                args.engine = match value("--engine")?.as_str() {
                    "sim" => Engine::Sim,
                    "exec" => Engine::Exec,
                    other => return Err(format!("unknown engine `{other}`")),
                };
            }
            "--policy" => {
                args.policy = match value("--policy")?.as_str() {
                    "global" => Policy::Global,
                    "partitioned" => Policy::Partitioned,
                    other => return Err(format!("unknown policy `{other}`")),
                };
            }
            "--pool" => {
                args.pool = match value("--pool")?.as_str() {
                    "v1" => PoolChoice::One(PoolEngine::V1Condvar),
                    "v2" => PoolChoice::One(PoolEngine::V2LockFree),
                    "both" => PoolChoice::Both,
                    other => return Err(format!("unknown pool engine `{other}` (v1|v2|both)")),
                };
            }
            "--m" => {
                args.m = value("--m")?
                    .parse()
                    .map_err(|e| format!("invalid --m: {e}"))?;
            }
            "--horizon" => {
                args.horizon = Some(
                    value("--horizon")?
                        .parse()
                        .map_err(|e| format!("invalid --horizon: {e}"))?,
                );
            }
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "summary" => Format::Summary,
                    "ascii" => Format::Ascii,
                    "chrome" => Format::Chrome,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--time-scale-us" => {
                args.time_scale = Duration::from_micros(
                    value("--time-scale-us")?
                        .parse()
                        .map_err(|e| format!("invalid --time-scale-us: {e}"))?,
                );
            }
            "--timeout-ms" => {
                args.timeout = Duration::from_millis(
                    value("--timeout-ms")?
                        .parse()
                        .map_err(|e| format!("invalid --timeout-ms: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.m == 0 {
        return Err("--m must be positive".into());
    }
    if args.pool == PoolChoice::Both && args.engine != Engine::Exec {
        return Err("--pool both requires --engine exec".into());
    }
    if args.timeout.is_zero() {
        return Err("--timeout-ms must be positive".into());
    }
    Ok(args)
}

fn load_set(path: &PathBuf) -> Result<TaskSet, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_task_set(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Algorithm 1 mappings for every task, required by the partitioned
/// policy at both levels.
fn mappings_for(set: &TaskSet, m: usize) -> Result<Vec<NodeMapping>, String> {
    set.iter()
        .map(|(i, t)| {
            algorithm1(t.dag(), m)
                .map_err(|e| format!("task {i}: Algorithm 1 found no safe mapping: {e}"))
        })
        .collect()
}

fn render(trace: &Trace, format: Format) -> String {
    match format {
        Format::Summary => {
            let defects = trace.validate();
            let mut out = TraceAnalysis::new(trace).summary();
            if defects.is_empty() {
                out.push_str(&format!("events: {} (schema valid)\n", trace.events.len()));
            } else {
                out.push_str(&format!("schema defects: {defects:?}\n"));
            }
            out
        }
        Format::Ascii => rtpool_trace::gantt::render(trace, 120),
        Format::Chrome => to_chrome_json(trace),
        Format::Csv => to_csv(trace),
    }
}

fn emit(rendered: &str, out: Option<&PathBuf>) -> Result<(), String> {
    match out {
        None => {
            print!("{rendered}");
            Ok(())
        }
        Some(path) => {
            std::fs::write(path, rendered)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
            Ok(())
        }
    }
}

fn run_sim(args: &RunArgs, set: &TaskSet) -> Result<(), String> {
    let policy = match args.policy {
        Policy::Global => SchedulingPolicy::Global,
        Policy::Partitioned => SchedulingPolicy::Partitioned,
    };
    let mut config = match args.horizon {
        None => SimConfig::single_job(policy, args.m),
        Some(h) => SimConfig::periodic(policy, args.m, h),
    }
    .with_event_trace();
    if args.policy == Policy::Partitioned {
        config = config.with_mappings(mappings_for(set, args.m)?);
    }
    let mut outcome = config.run(set).map_err(|e| e.to_string())?;
    let trace = outcome
        .take_event_trace()
        .expect("event tracing was enabled");
    if outcome.any_stall() {
        eprintln!("note: the simulation stalled (deadlock); the trace covers the stalled prefix");
    }
    emit(&render(&trace, args.format), args.out.as_ref())
}

/// Suffixes `--out` per task (`trace.json` → `trace.task1.json`) so an
/// exec run of an n-task workload yields n files.
fn task_out(out: Option<&PathBuf>, task: usize, tasks: usize) -> Option<PathBuf> {
    let out = out?;
    if tasks == 1 {
        return Some(out.clone());
    }
    let ext = out.extension().map(|e| e.to_string_lossy().into_owned());
    let stem = out.with_extension("");
    let mut name = format!("{}.task{task}", stem.display());
    if let Some(ext) = ext {
        name.push('.');
        name.push_str(&ext);
    }
    Some(PathBuf::from(name))
}

/// Runs task `i` of the set once on `engine`, returning its trace
/// (re-indexed to position `i`). The pool waits on barriers with the
/// workload's own sync backend (the `.rtp` `backend` directive), so a
/// spin workload exports `SpinStart`/`SpinEnd` windows.
fn run_task_trace(
    args: &RunArgs,
    i: usize,
    task: &rtpool_core::Task,
    backend: rtpool_core::SyncBackend,
    engine: PoolEngine,
) -> Result<Trace, String> {
    let discipline = match args.policy {
        Policy::Global => QueueDiscipline::GlobalFifo,
        Policy::Partitioned => QueueDiscipline::Partitioned(
            algorithm1(task.dag(), args.m)
                .map_err(|e| format!("task {i}: Algorithm 1 found no safe mapping: {e}"))?,
        ),
    };
    let config = PoolConfig::new(args.m, discipline)
        .with_engine(engine)
        .with_backend(backend)
        .with_time_scale(args.time_scale)
        .with_watchdog(args.timeout)
        .with_trace();
    let mut pool = ThreadPool::try_new(config).map_err(|e| e.to_string())?;
    let trace = match pool.run(task.dag()) {
        Ok(report) => report.trace.expect("tracing was enabled"),
        Err(e @ (ExecError::Stalled { .. } | ExecError::NodePanicked { .. })) => {
            eprintln!("note: task {i} failed ({e}); exporting the failed attempt's trace");
            pool.take_last_trace().expect("tracing was enabled")
        }
        Err(e) => return Err(format!("task {i}: {e}")),
    };
    Ok(trace.with_task_index(u32::try_from(i).unwrap_or(u32::MAX)))
}

fn engine_label(engine: PoolEngine) -> &'static str {
    match engine {
        PoolEngine::V1Condvar => "v1_condvar",
        PoolEngine::V2LockFree => "v2_lockfree",
    }
}

/// `--pool both`: runs every task under both dispatch engines and
/// prints a per-task table comparing their NodeStart→NodeEnd latency
/// percentiles (from the trace metrics histograms).
fn compare_engines(args: &RunArgs, set: &TaskSet) -> Result<(), String> {
    use std::fmt::Write as _;
    if args.format != Format::Summary {
        return Err("--pool both produces the comparison table; use --format summary".into());
    }
    let mut out = String::new();
    for (id, task) in set.iter() {
        let i = id.index();
        let _ = writeln!(out, "task {i}: NodeStart→NodeEnd latency (ns) by engine");
        let _ = writeln!(
            out,
            "  {:<12} {:>7} {:>10} {:>10} {:>10} {:>10}",
            "engine", "count", "p50", "p90", "p99", "max"
        );
        for engine in [PoolEngine::V1Condvar, PoolEngine::V2LockFree] {
            let trace = run_task_trace(args, i, task, set.backend(), engine)?;
            let metrics = MetricsRegistry::from_trace(&trace);
            let ti = u32::try_from(i).unwrap_or(u32::MAX);
            let mut lat = LatencyHistogram::new();
            for ((t, _), h) in metrics.node_latencies() {
                if t == ti {
                    lat.merge(h);
                }
            }
            let q = |p| lat.quantile_upper(p).unwrap_or(0);
            let _ = writeln!(
                out,
                "  {:<12} {:>7} {:>10} {:>10} {:>10} {:>10}",
                engine_label(engine),
                lat.count(),
                q(0.50),
                q(0.90),
                q(0.99),
                lat.max().unwrap_or(0)
            );
        }
    }
    emit(&out, args.out.as_ref())
}

fn run_exec(args: &RunArgs, set: &TaskSet) -> Result<(), String> {
    if args.horizon.is_some() {
        return Err("--horizon applies to the simulator only".into());
    }
    let engine = match args.pool {
        PoolChoice::Both => return compare_engines(args, set),
        PoolChoice::One(engine) => engine,
    };
    let tasks = set.iter().count();
    for (id, task) in set.iter() {
        let i = id.index();
        let trace = run_task_trace(args, i, task, set.backend(), engine)?;
        if args.format == Format::Summary && args.out.is_none() && tasks > 1 {
            println!("--- task {i} ---");
        }
        emit(
            &render(&trace, args.format),
            task_out(args.out.as_ref(), i, tasks).as_ref(),
        )?;
    }
    Ok(())
}

fn validate(path: &PathBuf) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let trace = match from_chrome_json(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let defects = trace.validate();
    if defects.is_empty() {
        println!(
            "{}: valid {} trace ({} events, {} cores, {} tasks, end_time {})",
            path.display(),
            trace.engine.as_str(),
            trace.events.len(),
            trace.cores,
            trace.tasks,
            trace.end_time
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("{}: {} schema defect(s):", path.display(), defects.len());
        for d in &defects {
            eprintln!("  {d}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut it = std::env::args();
    let _argv0 = it.next();
    let command = it.next();
    match command.as_deref() {
        Some("run") => {
            let args = match parse_run_args(it) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: {e}\n{}", usage());
                    return ExitCode::from(2);
                }
            };
            let set = match load_set(&args.workload) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            let result = match args.engine {
                Engine::Sim => run_sim(&args, &set),
                Engine::Exec => run_exec(&args, &set),
            };
            match result {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("validate") => match it.next() {
            Some(path) => validate(&PathBuf::from(path)),
            None => {
                eprintln!("error: missing trace path\n{}", usage());
                ExitCode::from(2)
            }
        },
        Some("--help" | "-h") | None => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n{}", usage());
            ExitCode::from(2)
        }
    }
}
