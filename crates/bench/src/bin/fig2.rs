//! Reproduces the paper's Figure 2 (insets a–f): schedulability ratio of
//! the proposed concurrency-aware tests versus the oblivious state of the
//! art, as `l_max`, `m`, and `n` vary.
//!
//! ```text
//! fig2 [--inset a|b|c|d|e|f|all] [--sets N] [--seed S]
//!      [--threads T] [--csv DIR] [--plot] [--trace DIR]
//! ```
//!
//! Defaults: all insets, 500 sets per point (the paper's count), seed
//! `0x5eedf00d`, all cores, text tables on stdout. `--trace DIR`
//! additionally replays one representative sample per requested inset
//! under the simulator with event tracing and writes the Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`) to
//! `DIR/fig2<letter>-sample.json`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use rtpool_bench::fig2::{run_insets, sample_for_trace, Fig2Params, Inset};
use rtpool_bench::sweep::SweepPool;
use rtpool_bench::table;
use rtpool_core::partition::algorithm1;
use rtpool_sim::{SchedulingPolicy, SimConfig};

struct Args {
    insets: Vec<Inset>,
    params: Fig2Params,
    csv_dir: Option<PathBuf>,
    plot: bool,
    trace_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        insets: Inset::ALL.to_vec(),
        params: Fig2Params::default(),
        csv_dir: None,
        plot: false,
        trace_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--inset" => {
                let v = value("--inset")?;
                if v.eq_ignore_ascii_case("all") {
                    args.insets = Inset::ALL.to_vec();
                } else {
                    args.insets =
                        vec![Inset::parse(&v).ok_or_else(|| format!("unknown inset `{v}`"))?];
                }
            }
            "--sets" => {
                args.params.sets_per_point = value("--sets")?
                    .parse()
                    .map_err(|e| format!("invalid --sets: {e}"))?;
            }
            "--seed" => {
                args.params.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?;
            }
            "--threads" => {
                args.params.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?;
            }
            "--csv" => {
                args.csv_dir = Some(PathBuf::from(value("--csv")?));
            }
            "--plot" => args.plot = true,
            "--trace" => {
                args.trace_dir = Some(PathBuf::from(value("--trace")?));
            }
            "--help" | "-h" => {
                println!(
                    "usage: fig2 [--inset a..f|all] [--sets N] [--seed S] \
                     [--threads T] [--csv DIR] [--plot] [--trace DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &args.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    // One pool for the whole process: all requested insets run as a
    // single chunked work queue with no further thread spawns and no
    // barrier between points.
    let pool = SweepPool::new(args.params.threads);
    let start = Instant::now();
    let results = run_insets(&pool, &args.insets, &args.params);
    let elapsed = start.elapsed();
    for (inset, series) in &results {
        println!("{}", table::render_text(*inset, series));
        if args.plot {
            println!("{}", table::render_ascii_plot(series));
        }
        if let Some(dir) = &args.csv_dir {
            let path = dir.join(format!("fig2{}.csv", inset.letter()));
            if let Err(e) = std::fs::write(&path, table::render_csv(*inset, series)) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("  wrote {}", path.display());
        }
        println!();
    }
    if let Some(dir) = &args.trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for &inset in &args.insets {
            match export_sample_trace(inset, args.params.seed, dir) {
                Ok(path) => println!("  wrote {}", path.display()),
                Err(e) => eprintln!("fig2: trace export for inset ({}): {e}", inset.letter()),
            }
        }
    }
    println!(
        "({} sets/point, seed {:#x}, {} workers, {:.1}s total)",
        args.params.sets_per_point,
        args.params.seed,
        pool.threads(),
        elapsed.as_secs_f64()
    );
    ExitCode::SUCCESS
}

/// Replays one representative sample (the middle x value, sample 0) of
/// `inset` under the simulator with event tracing and writes the Chrome
/// trace-event JSON to `dir`.
fn export_sample_trace(inset: Inset, seed: u64, dir: &Path) -> Result<PathBuf, String> {
    let xs = inset.x_values();
    let x = xs[xs.len() / 2];
    let (set, m) = sample_for_trace(inset, x, seed)?;
    let global = matches!(inset, Inset::A | Inset::C | Inset::E);
    let mut config = if global {
        SimConfig::single_job(SchedulingPolicy::Global, m)
    } else {
        SimConfig::single_job(SchedulingPolicy::Partitioned, m)
    }
    .with_event_trace();
    if !global {
        let mappings = set
            .iter()
            .map(|(id, t)| {
                algorithm1(t.dag(), m)
                    .map_err(|e| format!("task {id}: Algorithm 1 found no safe mapping: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        config = config.with_mappings(mappings);
    }
    let mut outcome = config.run(&set).map_err(|e| e.to_string())?;
    let trace = outcome
        .take_event_trace()
        .expect("event tracing was enabled");
    if outcome.any_stall() {
        eprintln!(
            "note: inset {} sample stalled (deadlock); the trace covers the stalled prefix",
            inset.letter()
        );
    }
    let path = dir.join(format!("fig2{}-sample.json", inset.letter()));
    std::fs::write(&path, rtpool_trace::to_chrome_json(&trace))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}
