//! Reproduces the paper's Figure 2 (insets a–f): schedulability ratio of
//! the proposed concurrency-aware tests versus the oblivious state of the
//! art, as `l_max`, `m`, and `n` vary.
//!
//! ```text
//! fig2 [--inset a|b|c|d|e|f|all] [--sets N] [--seed S]
//!      [--threads T] [--csv DIR] [--plot]
//! ```
//!
//! Defaults: all insets, 500 sets per point (the paper's count), seed
//! `0x5eedf00d`, all cores, text tables on stdout.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rtpool_bench::fig2::{run_insets, Fig2Params, Inset};
use rtpool_bench::sweep::SweepPool;
use rtpool_bench::table;

struct Args {
    insets: Vec<Inset>,
    params: Fig2Params,
    csv_dir: Option<PathBuf>,
    plot: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        insets: Inset::ALL.to_vec(),
        params: Fig2Params::default(),
        csv_dir: None,
        plot: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--inset" => {
                let v = value("--inset")?;
                if v.eq_ignore_ascii_case("all") {
                    args.insets = Inset::ALL.to_vec();
                } else {
                    args.insets =
                        vec![Inset::parse(&v).ok_or_else(|| format!("unknown inset `{v}`"))?];
                }
            }
            "--sets" => {
                args.params.sets_per_point = value("--sets")?
                    .parse()
                    .map_err(|e| format!("invalid --sets: {e}"))?;
            }
            "--seed" => {
                args.params.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?;
            }
            "--threads" => {
                args.params.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?;
            }
            "--csv" => {
                args.csv_dir = Some(PathBuf::from(value("--csv")?));
            }
            "--plot" => args.plot = true,
            "--help" | "-h" => {
                println!(
                    "usage: fig2 [--inset a..f|all] [--sets N] [--seed S] \
                     [--threads T] [--csv DIR] [--plot]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &args.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    // One pool for the whole process: all requested insets run as a
    // single chunked work queue with no further thread spawns and no
    // barrier between points.
    let pool = SweepPool::new(args.params.threads);
    let start = Instant::now();
    let results = run_insets(&pool, &args.insets, &args.params);
    let elapsed = start.elapsed();
    for (inset, series) in &results {
        println!("{}", table::render_text(*inset, series));
        if args.plot {
            println!("{}", table::render_ascii_plot(series));
        }
        if let Some(dir) = &args.csv_dir {
            let path = dir.join(format!("fig2{}.csv", inset.letter()));
            if let Err(e) = std::fs::write(&path, table::render_csv(*inset, series)) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("  wrote {}", path.display());
        }
        println!();
    }
    println!(
        "({} sets/point, seed {:#x}, {} workers, {:.1}s total)",
        args.params.sets_per_point,
        args.params.seed,
        pool.threads(),
        elapsed.as_secs_f64()
    );
    ExitCode::SUCCESS
}
