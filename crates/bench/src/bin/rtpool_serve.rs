//! `rtpool-serve`: a long-lived schedulability admission service.
//!
//! Reads JSON-lines admission requests (inline `.rtp` source or content
//! hash of a previously submitted set) from stdin — or, with
//! `--socket`, from sequential connections on a Unix domain socket —
//! and writes one JSON verdict line per request. Overload surfaces as
//! explicit `busy` (bounded ingress queue) and `shed` (latency-SLO
//! circuit breaker) verdicts; per-request deadline budgets degrade the
//! analysis gracefully instead of stalling the pipe; panicking analysis
//! workers are supervised and every request is answered exactly once.
//!
//! ```text
//! rtpool-serve [--workers N] [--pool injector|sweep]
//!              [--queue-cap N] [--batch-max N]
//!              [--default-deadline-us U] [--slo-p99-us U]
//!              [--shed-below-priority P] [--window N]
//!              [--interner-cap N] [--socket PATH]
//!              [--trace PATH] [--summary]
//! ```
//!
//! Defaults: all cores, lock-free injector dispatch (`--pool sweep`
//! falls back to the locked-range sweep pool), queue 256, no default
//! deadline, 50 ms p99 SLO,
//! shed priorities `< 4`, 64-response breaker window, interner 256. On
//! EOF (or socket shutdown) the backlog drains, the final report goes
//! to stderr (`--summary` prints it as JSON), and `--trace PATH` writes
//! the request-lifecycle trace as Chrome trace-event JSON.
//!
//! Request lines: `{"id": 1, "m": 8, "priority": 5, "deadline_us":
//! 20000, "source": "task period=...\n..."}` or `{"id": 2, "m": 8,
//! "hash": "<16 hex digits>"}`.

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

use rtpool_bench::serve::protocol::encode_response;
use rtpool_bench::serve::{BreakerConfig, InjectorPool, Response, ServeConfig, ServePool, Server};
use rtpool_bench::sweep::SweepPool;

struct Args {
    workers: usize,
    /// Dispatch engine: `true` = lock-free injector pool (default),
    /// `false` = locked-range sweep pool.
    injector: bool,
    config: ServeConfig,
    socket: Option<String>,
    trace: Option<String>,
    summary: bool,
}

fn usage() -> &'static str {
    "usage: rtpool-serve [--workers N] [--pool injector|sweep] \
     [--queue-cap N] [--batch-max N] \
     [--default-deadline-us U] [--slo-p99-us U] [--shed-below-priority P] \
     [--window N] [--interner-cap N] [--socket PATH] [--trace PATH] [--summary]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workers: 0,
        injector: true,
        config: ServeConfig::default(),
        socket: None,
        trace: None,
        summary: false,
    };
    let mut breaker = BreakerConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("invalid --workers: {e}"))?;
            }
            "--pool" => {
                args.injector = match value("--pool")?.as_str() {
                    "injector" => true,
                    "sweep" => false,
                    other => return Err(format!("invalid --pool `{other}` (injector|sweep)")),
                };
            }
            "--queue-cap" => {
                args.config.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("invalid --queue-cap: {e}"))?;
            }
            "--batch-max" => {
                args.config.batch_max = value("--batch-max")?
                    .parse()
                    .map_err(|e| format!("invalid --batch-max: {e}"))?;
            }
            "--default-deadline-us" => {
                args.config.default_deadline_us = value("--default-deadline-us")?
                    .parse()
                    .map_err(|e| format!("invalid --default-deadline-us: {e}"))?;
            }
            "--slo-p99-us" => {
                breaker.slo_p99_us = value("--slo-p99-us")?
                    .parse()
                    .map_err(|e| format!("invalid --slo-p99-us: {e}"))?;
            }
            "--shed-below-priority" => {
                breaker.shed_below_priority = value("--shed-below-priority")?
                    .parse()
                    .map_err(|e| format!("invalid --shed-below-priority: {e}"))?;
            }
            "--window" => {
                breaker.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("invalid --window: {e}"))?;
            }
            "--interner-cap" => {
                args.config.interner_cap = value("--interner-cap")?
                    .parse()
                    .map_err(|e| format!("invalid --interner-cap: {e}"))?;
            }
            "--socket" => args.socket = Some(value("--socket")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--summary" => args.summary = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    args.config.breaker = breaker;
    args.config.record_trace = args.trace.is_some();
    Ok(args)
}

/// Forwards responses to `write` as JSON lines until the channel closes.
fn pump_responses(rx: &Receiver<Response>, mut write: impl Write) {
    // A short timeout keeps the pump responsive to shutdown while
    // batching flushes under load.
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(resp) => {
                let mut line = encode_response(&resp);
                line.push('\n');
                while let Ok(resp) = rx.try_recv() {
                    line.push_str(&encode_response(&resp));
                    line.push('\n');
                }
                if write.write_all(line.as_bytes()).is_err() || write.flush().is_err() {
                    return; // client went away; drain silently
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Feeds stdin lines to the server; returns the response pump handle so
/// the caller can join it after shutdown (the pump exits when the
/// response channel disconnects, i.e. once the drained server drops).
fn serve_stdin(server: &Server, rx: Receiver<Response>) -> std::thread::JoinHandle<()> {
    let pump = std::thread::spawn(move || pump_responses(&rx, std::io::stdout().lock()));
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        server.submit(&line);
    }
    pump
}

fn serve_socket(server: &Server, rx: Receiver<Response>, path: &str) -> Result<(), String> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)
        .map_err(|e| format!("cannot bind socket {path}: {e}"))?;
    eprintln!("rtpool-serve: listening on {path} (one client at a time)");
    let done = Arc::new(AtomicBool::new(false));
    // Connections are served sequentially, so every in-flight response
    // belongs to the currently connected client.
    for stream in listener.incoming() {
        let stream = stream.map_err(|e| format!("accept failed: {e}"))?;
        let out = stream
            .try_clone()
            .map_err(|e| format!("cannot clone socket stream: {e}"))?;
        std::thread::scope(|scope| {
            let done = Arc::clone(&done);
            let stream = &stream;
            scope.spawn(move || {
                for line in BufReader::new(stream).lines() {
                    let Ok(line) = line else { break };
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    if trimmed == "\"shutdown\"" {
                        done.store(true, Ordering::Relaxed);
                        break;
                    }
                    server.submit(&line);
                }
            });
            pump_responses_until_idle(&rx, out, server);
        });
        if done.load(Ordering::Relaxed) {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Socket variant of the pump: returns once the client has disconnected
/// and no work remains in flight, so the next client can be accepted.
fn pump_responses_until_idle(rx: &Receiver<Response>, mut write: impl Write, server: &Server) {
    let mut idle_polls = 0u32;
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(resp) => {
                idle_polls = 0;
                let mut line = encode_response(&resp);
                line.push('\n');
                let _ = write.write_all(line.as_bytes());
                let _ = write.flush();
            }
            Err(RecvTimeoutError::Disconnected) => return,
            Err(RecvTimeoutError::Timeout) => {
                if server.idle() {
                    idle_polls += 1;
                    // Two consecutive idle polls: the reader side has
                    // stopped feeding and nothing is in flight.
                    if idle_polls >= 2 {
                        return;
                    }
                } else {
                    idle_polls = 0;
                }
            }
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let workers = if args.workers == 0 {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    } else {
        args.workers
    };
    let pool = if args.injector {
        ServePool::from(Arc::new(InjectorPool::new(workers)))
    } else {
        ServePool::from(Arc::new(SweepPool::new(workers)))
    };
    eprintln!(
        "rtpool-serve: {} analysis workers ({} dispatch), queue {}, SLO p99 {} µs",
        pool.threads(),
        pool.engine_label(),
        args.config.queue_cap,
        args.config.breaker.slo_p99_us
    );
    let trace_path = args.trace.clone();
    let summary = args.summary;
    let (server, rx) = Server::start_on(args.config, pool);
    let mut pump = None;
    let result = match &args.socket {
        None => {
            pump = Some(serve_stdin(&server, rx));
            Ok(())
        }
        Some(path) => serve_socket(&server, rx, path),
    };
    let report = server.shutdown();
    if let Some(pump) = pump {
        // The channel is closed now; the pump flushes the final
        // responses and exits.
        pump.join().expect("response pump healthy");
    }
    if let Err(e) = result {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if summary {
        eprintln!("{}", report.to_json());
    } else {
        eprintln!(
            "rtpool-serve: {} accepted, {} admitted, {} rejected, {} busy, {} shed, \
             {} errors ({} degraded); p99 {} µs",
            report.accepted,
            report.admitted,
            report.rejected,
            report.busy,
            report.shed,
            report.errors,
            report.degraded,
            report
                .latency
                .quantile_upper(0.99)
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
        );
    }
    if let (Some(path), Some(trace)) = (trace_path, report.trace.as_ref()) {
        if let Err(e) = std::fs::write(&path, rtpool_trace::to_chrome_json(trace)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
