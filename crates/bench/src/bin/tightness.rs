//! Bound-tightness report: `analysis bound / simulated worst response`
//! for each shipped analysis, on randomly generated accepted task sets.
//!
//! ```text
//! tightness [--sets N] [--m M] [--n TASKS] [--u UTIL] [--seed S] [--threads T]
//! ```

use std::process::ExitCode;

use rtpool_bench::sweep::SweepPool;
use rtpool_bench::tightness;

fn main() -> ExitCode {
    let mut sets = 200usize;
    let mut m = 8usize;
    let mut n = 4usize;
    let mut u = 2.0f64;
    let mut seed = 0x715e_u64;
    let mut threads = std::thread::available_parallelism().map_or(4, |t| t.get());
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--sets" => sets = value("--sets")?.parse().map_err(|e| format!("{e}"))?,
                "--m" => m = value("--m")?.parse().map_err(|e| format!("{e}"))?,
                "--n" => n = value("--n")?.parse().map_err(|e| format!("{e}"))?,
                "--u" => u = value("--u")?.parse().map_err(|e| format!("{e}"))?,
                "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
                "--threads" => threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?,
                "--help" | "-h" => {
                    println!("usage: tightness [--sets N] [--m M] [--n TASKS] [--u UTIL] [--seed S] [--threads T]");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "Bound tightness: {sets} sets, m={m}, n={n}, U={u}; synchronous periodic simulation\n"
    );
    println!(
        "{:<26} | {:>8} | {:>11} | {:>10} | {:>10}",
        "analysis", "accepted", "mean R/Rsim", "max R/Rsim", "violations"
    );
    println!("{}", "-".repeat(78));
    let pool = SweepPool::new(threads);
    for t in tightness::measure(&pool, sets, m, n, u, seed) {
        println!(
            "{:<26} | {:>8} | {:>11.3} | {:>10.3} | {:>10}",
            t.label, t.accepted, t.mean_ratio, t.max_ratio, t.violations
        );
    }
    println!(
        "\n(violations = simulated response above the analytic bound; only the\n oblivious baseline can violate — the unsafety the paper demonstrates)"
    );
    ExitCode::SUCCESS
}
