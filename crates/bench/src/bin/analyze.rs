//! Command-line analyzer for task sets in the `.rtp` text format (see
//! `rtpool_core::textfmt`): lint diagnostics, per-task structural
//! metrics, schedulability under every shipped test, Algorithm 1
//! mappings, and optional simulation.
//!
//! Parsing and all structural/deadlock checking are routed through the
//! `rtlint` engine (`rtpool_lint::check_source`), so this tool prints
//! the same diagnostics — with spans, notes, and fix suggestions — as
//! `rtlint` itself, followed by the numeric analysis sections. The exit
//! status is non-zero when the linter reports an error-severity finding.
//!
//! ```text
//! analyze <file.rtp> --m <threads> [--simulate] [--policy global|partitioned]
//!         [--timeout-ms T]
//! ```
//!
//! `--timeout-ms` bounds the response-time fix-points: past the budget
//! the analysis stops with a clean "analysis timed out" error instead of
//! iterating further (pathological parameters can make the
//! pseudo-polynomial RTA arbitrarily slow).

use std::process::ExitCode;
use std::time::Duration;

use rtpool_core::analysis::global::{analyze_many_cancellable, ConcurrencyModel};
use rtpool_core::analysis::partitioned::{self, PartitionStrategy};
use rtpool_core::{sizing, CancelToken, ConcurrencyAnalysis, TaskId};
use rtpool_lint::{check_source, render_human, LintOptions};
use rtpool_sim::{SchedulingPolicy, SimConfig};

struct Args {
    path: String,
    m: usize,
    simulate: bool,
    policy: SchedulingPolicy,
    timeout: Option<Duration>,
}

fn parse_args() -> Result<Args, String> {
    let mut path = None;
    let mut m = 4usize;
    let mut simulate = false;
    let mut policy = SchedulingPolicy::Global;
    let mut timeout = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--m" => {
                m = it
                    .next()
                    .ok_or("missing value for --m")?
                    .parse()
                    .map_err(|e| format!("invalid --m: {e}"))?;
            }
            "--simulate" => simulate = true,
            "--timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("missing value for --timeout-ms")?
                    .parse()
                    .map_err(|e| format!("invalid --timeout-ms: {e}"))?;
                if ms == 0 {
                    return Err("--timeout-ms must be positive".into());
                }
                timeout = Some(Duration::from_millis(ms));
            }
            "--policy" => {
                policy = match it.next().as_deref() {
                    Some("global") => SchedulingPolicy::Global,
                    Some("partitioned") => SchedulingPolicy::Partitioned,
                    other => return Err(format!("invalid --policy {other:?}")),
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: analyze <file.rtp> [--m N] [--simulate] \
                     [--policy global|partitioned] [--timeout-ms T]"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            file => path = Some(file.to_owned()),
        }
    }
    Ok(Args {
        path: path.ok_or("missing input file")?,
        m,
        simulate,
        policy,
        timeout,
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let text = std::fs::read_to_string(&args.path)
        .map_err(|e| format!("cannot read {}: {e}", args.path))?;
    let m = args.m;

    // One parse, shared with the linter: the lint pass owns parsing and
    // all structural/deadlock diagnostics.
    let (report, parsed) = check_source(&args.path, &text, &LintOptions::with_m(m));
    if !report.is_clean() {
        println!("== Lint (rtlint, m = {m}) ==");
        print!("{}", render_human(&report, Some(&text)));
    }
    let Some((set, _spans)) = parsed else {
        return Err(format!(
            "{} does not parse; see diagnostics above",
            args.path
        ));
    };

    println!(
        "{} tasks, m = {m}, total utilization {:.3}\n",
        set.len(),
        set.total_utilization()
    );

    println!("== Per-task structural metrics (Section 3) ==");
    for (id, task) in set.iter() {
        let ca = ConcurrencyAnalysis::new(task.dag());
        println!(
            "  {id}: |V|={:3} vol={:6} len={:5} T={:7} D={:7} U={:.3}",
            task.dag().node_count(),
            task.volume(),
            task.critical_path_length(),
            task.period(),
            task.deadline(),
            task.utilization(),
        );
        println!(
            "      b̄={} l̄({m})={} max-suspended={} min-safe-pool={}",
            ca.max_delay_count(),
            ca.concurrency_lower_bound(m),
            ca.max_suspended_forks().len(),
            sizing::min_threads_deadlock_free(task.dag()),
        );
    }

    let token = args.timeout.map_or_else(CancelToken::never, |t| {
        CancelToken::with_deadline(std::time::Instant::now() + t)
    });

    println!("\n== Global schedulability (Section 4.1) ==");
    for (label, model) in [
        ("Melani et al. [14] (oblivious)", ConcurrencyModel::Full),
        ("limited concurrency (paper)", ConcurrencyModel::Limited),
        (
            "exact antichain (extension)",
            ConcurrencyModel::LimitedExact,
        ),
    ] {
        let r = match analyze_many_cancellable(&set, m, &[model], &token) {
            Ok(mut results) => results.remove(0),
            Err(_) => {
                return Err(format!(
                    "analysis timed out after {:?} (in {label}); \
                     re-run with a larger --timeout-ms",
                    args.timeout.unwrap_or_default()
                ));
            }
        };
        print!(
            "  {label:35} {}",
            if r.is_schedulable() {
                "SCHEDULABLE  "
            } else {
                "unschedulable"
            }
        );
        let responses: Vec<String> = r
            .verdicts()
            .iter()
            .map(|v| v.response_time().map_or("-".into(), |r| r.to_string()))
            .collect();
        println!("  R = [{}]", responses.join(", "));
    }

    println!("\n== Partitioned schedulability (Section 4.2) ==");
    for (label, strategy) in [
        (
            "worst-fit (oblivious baseline)",
            PartitionStrategy::WorstFit,
        ),
        ("Algorithm 1 (delay-free)", PartitionStrategy::Algorithm1),
    ] {
        let (r, mappings) = partitioned::partition_and_analyze(&set, m, strategy);
        print!(
            "  {label:35} {}",
            if r.is_schedulable() {
                "SCHEDULABLE  "
            } else {
                "unschedulable"
            }
        );
        let responses: Vec<String> = r
            .verdicts()
            .iter()
            .map(|v| v.response_time().map_or("-".into(), |r| r.to_string()))
            .collect();
        println!("  R = [{}]", responses.join(", "));
        for (i, mapping) in mappings.iter().enumerate() {
            if let Some(mapping) = mapping {
                let task = set.task(TaskId(i));
                println!("      τ{i} loads: {:?}", mapping.loads(task.dag()));
            } else {
                println!("      τ{i}: partitioning failed");
            }
        }
    }

    if args.simulate {
        println!("\n== Simulation ({:?}) ==", args.policy);
        let horizon = set
            .iter()
            .map(|(_, t)| t.period())
            .max()
            .unwrap_or(1)
            .saturating_mul(3);
        let mut config = SimConfig::periodic(args.policy, m, horizon);
        if args.policy == SchedulingPolicy::Partitioned {
            let (_, mappings) =
                partitioned::partition_and_analyze(&set, m, PartitionStrategy::Algorithm1);
            let maps: Option<Vec<_>> = mappings.into_iter().collect();
            match maps {
                Some(maps) => config = config.with_mappings(maps),
                None => return Err("cannot simulate: Algorithm 1 failed for some task".into()),
            }
        }
        let out = config.run(&set).map_err(|e| e.to_string())?;
        for (i, t) in out.tasks().iter().enumerate() {
            println!(
                "  τ{i}: released={} completed={} max-response={:?} misses={} min-l(t)={}{}",
                t.released,
                t.completed,
                t.max_response,
                t.deadline_misses,
                t.min_available_concurrency,
                t.stall
                    .as_ref()
                    .map(|s| format!("  STALLED at t={}", s.time))
                    .unwrap_or_default(),
            );
        }
    }
    Ok(!report.has_failures())
}
