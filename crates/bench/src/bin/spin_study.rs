//! Emits `BENCH_spin.json`: the suspend-vs-spin head-to-head study.
//!
//! ```text
//! spin_study [--backend suspend|spin|both] [--inset a|c|e|all]
//!            [--sets N] [--seed S] [--threads T] [--reps R]
//!            [--quick] [--out PATH]
//! ```
//!
//! The schedulability half re-runs the fig2 sweep over the global
//! insets with every sampled set analyzed under both barrier backends
//! (see `rtpool_bench::spin_study`); the execution half times short-
//! and long-wait fork-join jobs on the real pool under both backends
//! and both engines. The artifact carries two determinism/correctness
//! gates CI greps for:
//!
//! * `"verdicts_match": true` — the suspend series is bit-identical to
//!   the `fig2` pipeline (same RNG streams, same tallies, same ratios);
//! * `"spin_never_beats_suspend": true` — no sampled set was
//!   schedulable under spin but not under suspend.
//!
//! `--quick` (the CI smoke configuration) drops to 40 sets per point on
//! insets (a) and (c) with 5 timing reps.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use rtpool_bench::fig2::{Fig2Params, Inset};
use rtpool_bench::spin_study::{run_exec_study, run_study, BackendChoice, StudyReport};
use rtpool_bench::sweep::SweepPool;

struct Args {
    insets: Vec<Inset>,
    params: Fig2Params,
    choice: BackendChoice,
    reps: usize,
    out: String,
}

const GLOBAL_INSETS: [Inset; 3] = [Inset::A, Inset::C, Inset::E];

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        insets: vec![Inset::A, Inset::C],
        params: Fig2Params {
            sets_per_point: 150,
            ..Fig2Params::default()
        },
        choice: BackendChoice::Both,
        reps: 15,
        out: "BENCH_spin.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--backend" => {
                let v = value("--backend")?;
                args.choice = BackendChoice::parse(&v)
                    .ok_or_else(|| format!("unknown backend `{v}` (suspend|spin|both)"))?;
            }
            "--inset" => {
                let v = value("--inset")?;
                if v.eq_ignore_ascii_case("all") {
                    args.insets = GLOBAL_INSETS.to_vec();
                } else {
                    let inset = Inset::parse(&v).ok_or_else(|| format!("unknown inset `{v}`"))?;
                    if !GLOBAL_INSETS.contains(&inset) {
                        return Err(format!(
                            "inset ({v}) is partitioned; the spin study covers a, c, e"
                        ));
                    }
                    args.insets = vec![inset];
                }
            }
            "--sets" => {
                args.params.sets_per_point = value("--sets")?
                    .parse()
                    .map_err(|e| format!("invalid --sets: {e}"))?;
            }
            "--seed" => {
                args.params.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?;
            }
            "--threads" => {
                args.params.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?;
            }
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("invalid --reps: {e}"))?;
            }
            "--quick" => {
                args.params.sets_per_point = 40;
                args.insets = vec![Inset::A, Inset::C];
                args.reps = 5;
            }
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => {
                println!(
                    "usage: spin_study [--backend suspend|spin|both] [--inset a|c|e|all] \
                     [--sets N] [--seed S] [--threads T] [--reps R] [--quick] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn render_json(
    args: &Args,
    report: &StudyReport,
    exec: &[rtpool_bench::spin_study::ExecScenario],
) -> String {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"rtpool-bench/spin-study@1\",");
    let _ = writeln!(
        json,
        "  \"what\": \"suspend-vs-spin barrier backends: fig2-style schedulability sweep + exec wall-clock head-to-head\","
    );
    let _ = writeln!(json, "  \"seed\": {},", args.params.seed);
    let _ = writeln!(
        json,
        "  \"sets_per_point\": {},",
        args.params.sets_per_point
    );
    let backends = match args.choice {
        BackendChoice::Suspend => "[\"suspend\"]",
        BackendChoice::Spin => "[\"spin\"]",
        BackendChoice::Both => "[\"suspend\", \"spin\"]",
    };
    let _ = writeln!(json, "  \"backends\": {backends},");
    json.push_str("  \"insets\": [\n");
    for (i, (inset, points)) in report.series.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"inset\": \"{}\", \"x_label\": \"{}\", \"description\": \"{}\", \"series\": [",
            inset.letter(),
            inset.x_label(),
            inset.description()
        );
        for (j, p) in points.iter().enumerate() {
            let mut line = format!("      {{ \"x\": {}", p.x);
            if args.choice.runs_suspend() {
                let _ = write!(line, ", \"suspend\": {:.6}", p.suspend);
            }
            if args.choice.runs_spin() {
                let _ = write!(line, ", \"spin\": {:.6}", p.spin);
            }
            let _ = write!(
                line,
                ", \"baseline\": {:.6}, \"samples\": {}, \"skipped\": {}, \"errors\": {} }}",
                p.baseline, p.samples, p.skipped, p.errors
            );
            let _ = writeln!(
                json,
                "{line}{}",
                if j + 1 < points.len() { "," } else { "" }
            );
        }
        let _ = writeln!(
            json,
            "    ] }}{}",
            if i + 1 < report.series.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"exec_wall_clock\": [\n");
    for (i, s) in exec.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"scenario\": \"{}\", \"engine\": \"{}\", \"suspend_ns\": {}, \"spin_ns\": {}, \"spin_speedup\": {:.3} }}{}",
            s.name,
            s.engine,
            s.suspend.as_nanos(),
            s.spin.as_nanos(),
            s.spin_speedup(),
            if i + 1 < exec.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"verdicts_match\": {},", report.verdicts_match);
    let _ = writeln!(
        json,
        "  \"spin_never_beats_suspend\": {}",
        report.spin_never_beats_suspend()
    );
    json.push_str("}\n");
    json
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pool = SweepPool::new(args.params.threads);
    let start = Instant::now();
    let report = run_study(&pool, &args.insets, &args.params, args.choice);
    let sweep_elapsed = start.elapsed();
    let exec = run_exec_study(args.reps);

    for (inset, points) in &report.series {
        println!(
            "inset ({}) — {} (proposed-test ratio per backend)",
            inset.letter(),
            inset.description()
        );
        println!(
            "  {:>6}  {:>8}  {:>8}  {:>8}",
            inset.x_label(),
            "suspend",
            "spin",
            "samples"
        );
        for p in points {
            println!(
                "  {:>6}  {:>8.3}  {:>8.3}  {:>8}",
                p.x, p.suspend, p.spin, p.samples
            );
        }
        println!();
    }
    for s in &exec {
        println!(
            "exec {} / {}: suspend {:?}, spin {:?} (spin speedup {:.2}x)",
            s.name,
            s.engine,
            s.suspend,
            s.spin,
            s.spin_speedup()
        );
    }

    assert!(
        report.verdicts_match,
        "suspend series diverged from the fig2 pipeline"
    );
    assert!(
        report.spin_never_beats_suspend(),
        "a set was schedulable under spin but not under suspend"
    );

    let json = render_json(&args, &report, &exec);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} sets/point, seed {:#x}, sweep {:.1}s)",
        args.out,
        args.params.sets_per_point,
        args.params.seed,
        sweep_elapsed.as_secs_f64()
    );
    ExitCode::SUCCESS
}
