//! Diagnostic probe: prints per-task workload statistics and the
//! partitioned response-time bounds for a few generated sets, to help
//! tune experiment parameters. Not part of the reproduction surface.

use rand::SeedableRng;
use rtpool_bench::pipeline::partition_and;
use rtpool_core::analysis::global::{self, ConcurrencyModel};
use rtpool_core::analysis::partitioned::PartitionStrategy;
use rtpool_core::ConcurrencyAnalysis;
use rtpool_gen::{DagGenConfig, TaskSetConfig};

fn main() {
    let m = 8;
    let u = 2.0;
    let n = 4;
    for seed in 0..6u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let set = TaskSetConfig::new(n, u, DagGenConfig::default())
            .generate(&mut rng)
            .unwrap();
        println!("== seed {seed} ==");
        for (id, t) in set.iter() {
            let ca = ConcurrencyAnalysis::new(t.dag());
            println!(
                "  {id}: |V|={:3} vol={:5} len={:4} T={:6} U={:.2} bbar={} ",
                t.dag().node_count(),
                t.volume(),
                t.critical_path_length(),
                t.period(),
                t.utilization(),
                ca.max_delay_count(),
            );
        }
        let g = global::analyze(&set, m, ConcurrencyModel::Full);
        let (wf, _) = partition_and(&set, m, PartitionStrategy::WorstFit);
        let (a1, _) = partition_and(&set, m, PartitionStrategy::Algorithm1);
        for (id, t) in set.iter() {
            println!(
                "  {id}: D={:6} global={:?} wf={:?} alg1={:?}",
                t.deadline(),
                g.verdict(id).response_time(),
                wf.verdict(id).response_time(),
                a1.verdict(id).response_time(),
            );
        }
    }
}
