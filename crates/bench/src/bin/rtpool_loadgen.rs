//! `rtpool-loadgen`: drives a spawned `rtpool-serve` child process at a
//! configurable overload factor and checks the resilience invariants
//! from the outside.
//!
//! ```text
//! rtpool-loadgen [--serve-bin PATH] [--workers N] [--duration-secs S]
//!                [--overload F] [--seed S] [--max-rss-mb MB]
//!                [--calibrate N] [--out PATH]
//! ```
//!
//! Two phases, each against a fresh child:
//!
//! 1. **Calibration** — `--calibrate` requests (default 200) as fast as
//!    possible against a permissive SLO, measuring the sustained
//!    verdict rate and the p99 latency.
//! 2. **Soak** — `--duration-secs` (default 30) at `--overload` (default
//!    2.0) times the calibrated rate, with the child's SLO pinned to the
//!    calibrated p99 so the breaker has a realistic trip point.
//!
//! Asserted invariants, each fatal (non-zero exit) when violated:
//!
//! * **zero lost requests** — every submitted line is answered;
//! * **bounded memory** — the child's peak RSS (sampled from
//!   `/proc/<pid>/status`) stays under `--max-rss-mb` (default 512);
//! * **clean shutdown** — closing stdin drains the backlog and the
//!   child exits with status 0.
//!
//! `--out PATH` writes the soak latency histogram and verdict counts as
//! a JSON artifact (the CI `serve-soak` job uploads it).

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rtpool_bench::serve::loadgen::{gen_request_lines, LoadConfig};
use rtpool_bench::serve::protocol::{parse_response, Response, VerdictKind};
use rtpool_trace::LatencyHistogram;

struct Args {
    serve_bin: String,
    workers: usize,
    duration: Duration,
    overload: f64,
    seed: u64,
    max_rss_mb: u64,
    calibrate: usize,
    out: Option<String>,
}

fn usage() -> &'static str {
    "usage: rtpool-loadgen [--serve-bin PATH] [--workers N] [--duration-secs S] \
     [--overload F] [--seed S] [--max-rss-mb MB] [--calibrate N] [--out PATH]"
}

fn default_serve_bin() -> String {
    // Sibling binary in the same target directory as this one.
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("rtpool-serve")))
        .map_or_else(|| "rtpool-serve".to_string(), |p| p.display().to_string())
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        serve_bin: default_serve_bin(),
        workers: 0,
        duration: Duration::from_secs(30),
        overload: 2.0,
        seed: 0x10ad,
        max_rss_mb: 512,
        calibrate: 200,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--serve-bin" => args.serve_bin = value("--serve-bin")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("invalid --workers: {e}"))?;
            }
            "--duration-secs" => {
                args.duration = Duration::from_secs(
                    value("--duration-secs")?
                        .parse()
                        .map_err(|e| format!("invalid --duration-secs: {e}"))?,
                );
            }
            "--overload" => {
                args.overload = value("--overload")?
                    .parse()
                    .map_err(|e| format!("invalid --overload: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?;
            }
            "--max-rss-mb" => {
                args.max_rss_mb = value("--max-rss-mb")?
                    .parse()
                    .map_err(|e| format!("invalid --max-rss-mb: {e}"))?;
            }
            "--calibrate" => {
                args.calibrate = value("--calibrate")?
                    .parse()
                    .map_err(|e| format!("invalid --calibrate: {e}"))?;
            }
            "--out" => args.out = Some(value("--out")?),
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.overload <= 0.0 {
        return Err("--overload must be positive".into());
    }
    Ok(args)
}

/// Peak RSS of `pid` in kB, from `/proc/<pid>/status` (`VmHWM`, falling
/// back to `VmRSS`). `None` off Linux or if the process is gone.
fn peak_rss_kb(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    let field = |name: &str| {
        status.lines().find_map(|l| {
            l.strip_prefix(name)?
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok()
        })
    };
    field("VmHWM:").or_else(|| field("VmRSS:"))
}

/// Tally of one phase against the child.
struct PhaseOutcome {
    sent: u64,
    answered: u64,
    admitted: u64,
    rejected: u64,
    busy: u64,
    shed: u64,
    errors: u64,
    degraded: u64,
    latency: LatencyHistogram,
    elapsed: Duration,
    peak_rss_kb: u64,
    exit_ok: bool,
}

impl PhaseOutcome {
    fn lost(&self) -> u64 {
        self.sent - self.answered
    }

    fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        (self.shed + self.busy) as f64 / self.sent as f64
    }
}

fn spawn_server(args: &Args, slo_p99_us: Option<u64>) -> Result<Child, String> {
    let mut cmd = Command::new(&args.serve_bin);
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if args.workers > 0 {
        cmd.arg("--workers").arg(args.workers.to_string());
    }
    if let Some(slo) = slo_p99_us {
        cmd.arg("--slo-p99-us").arg(slo.to_string());
    }
    cmd.spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", args.serve_bin))
}

/// Streams `lines` into the child at `pace` (None = as fast as
/// possible), reads responses concurrently, then closes stdin and waits
/// for a clean exit. RSS is sampled from /proc once per second.
fn run_phase(
    args: &Args,
    lines: &[String],
    pace: Option<Duration>,
    slo_p99_us: Option<u64>,
) -> Result<PhaseOutcome, String> {
    let mut child = spawn_server(args, slo_p99_us)?;
    let pid = child.id();
    let mut stdin = child.stdin.take().expect("child stdin piped");
    let stdout = child.stdout.take().expect("child stdout piped");

    let (tx, rx) = mpsc::channel::<Response>();
    let reader = std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            match parse_response(&line) {
                Ok(resp) => {
                    if tx.send(resp).is_err() {
                        break;
                    }
                }
                Err(e) => eprintln!("loadgen: unparseable response line: {e}"),
            }
        }
    });

    let start = Instant::now();
    let mut outcome = PhaseOutcome {
        sent: 0,
        answered: 0,
        admitted: 0,
        rejected: 0,
        busy: 0,
        shed: 0,
        errors: 0,
        degraded: 0,
        latency: LatencyHistogram::new(),
        elapsed: Duration::ZERO,
        peak_rss_kb: 0,
        exit_ok: false,
    };
    let absorb = |outcome: &mut PhaseOutcome, resp: &Response| {
        outcome.answered += 1;
        match resp.verdict {
            VerdictKind::Admit => outcome.admitted += 1,
            VerdictKind::Reject => outcome.rejected += 1,
            VerdictKind::Busy => outcome.busy += 1,
            VerdictKind::Shed => outcome.shed += 1,
            VerdictKind::Error => outcome.errors += 1,
        }
        if resp.degraded {
            outcome.degraded += 1;
        }
        outcome.latency.observe(resp.latency_us);
    };

    let mut last_rss = Instant::now() - Duration::from_secs(2);
    let mut write_failed = false;
    for line in lines {
        if stdin.write_all(line.as_bytes()).is_err() || stdin.write_all(b"\n").is_err() {
            write_failed = true;
            break;
        }
        outcome.sent += 1;
        while let Ok(resp) = rx.try_recv() {
            absorb(&mut outcome, &resp);
        }
        if last_rss.elapsed() >= Duration::from_secs(1) {
            last_rss = Instant::now();
            outcome.peak_rss_kb = outcome.peak_rss_kb.max(peak_rss_kb(pid).unwrap_or(0));
        }
        if let Some(p) = pace {
            std::thread::sleep(p);
        }
    }
    let _ = stdin.flush();
    drop(stdin); // EOF: the server drains and shuts down.

    // Drain the remaining responses; the reader thread ends when the
    // child closes stdout on exit.
    while outcome.answered < outcome.sent {
        match rx.recv_timeout(Duration::from_secs(30)) {
            Ok(resp) => absorb(&mut outcome, &resp),
            Err(_) => break,
        }
    }
    outcome.elapsed = start.elapsed();
    outcome.peak_rss_kb = outcome.peak_rss_kb.max(peak_rss_kb(pid).unwrap_or(0));
    reader.join().expect("reader thread healthy");
    let status = child
        .wait()
        .map_err(|e| format!("waiting for child: {e}"))?;
    outcome.exit_ok = status.success() && !write_failed;
    Ok(outcome)
}

fn artifact_json(soak: &PhaseOutcome, args: &Args, rate: f64) -> String {
    let q = |p: f64| {
        soak.latency
            .quantile_upper(p)
            .map_or_else(|| "null".to_string(), |v| v.to_string())
    };
    format!(
        "{{\n  \"benchmark\": \"rtpool-serve soak\",\n  \"duration_secs\": {:.1},\n  \
         \"overload\": {},\n  \"target_rate_per_sec\": {rate:.1},\n  \"sent\": {},\n  \
         \"answered\": {},\n  \"lost\": {},\n  \"admitted\": {},\n  \"rejected\": {},\n  \
         \"busy\": {},\n  \"shed\": {},\n  \"errors\": {},\n  \"degraded\": {},\n  \
         \"shed_rate\": {:.4},\n  \"peak_rss_kb\": {},\n  \"clean_exit\": {},\n  \
         \"latency_us\": {{ \"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
         \"p999\": {}, \"max\": {} }}\n}}\n",
        soak.elapsed.as_secs_f64(),
        args.overload,
        soak.sent,
        soak.answered,
        soak.lost(),
        soak.admitted,
        soak.rejected,
        soak.busy,
        soak.shed,
        soak.errors,
        soak.degraded,
        soak.shed_rate(),
        soak.peak_rss_kb,
        soak.exit_ok,
        soak.latency.count(),
        q(0.50),
        q(0.90),
        q(0.99),
        q(0.999),
        soak.latency.max().unwrap_or(0),
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    // Phase 1: calibration — unpaced, permissive SLO (no shedding).
    eprintln!(
        "loadgen: calibrating with {} requests against {}",
        args.calibrate, args.serve_bin
    );
    let cal_lines = gen_request_lines(&LoadConfig {
        requests: args.calibrate.max(16),
        seed: args.seed,
        ..LoadConfig::default()
    });
    let cal = match run_phase(&args, &cal_lines, None, Some(10_000_000)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: calibration failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !cal.exit_ok || cal.lost() > 0 {
        eprintln!(
            "error: calibration run unhealthy (lost {}, clean exit {})",
            cal.lost(),
            cal.exit_ok
        );
        return ExitCode::FAILURE;
    }
    let sustained = cal.answered as f64 / cal.elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    let cal_p99 = cal.latency.quantile_upper(0.99).unwrap_or(1000).max(100);
    eprintln!(
        "loadgen: calibrated {sustained:.1} verdicts/s, p99 {cal_p99} µs; \
         soaking {}s at {:.1}x",
        args.duration.as_secs(),
        args.overload
    );

    // Phase 2: soak at overload × sustained, SLO pinned to calibrated
    // p99 so the breaker trips under genuine overload.
    let target_rate = sustained * args.overload;
    let pace = Duration::from_secs_f64(1.0 / target_rate.max(1.0));
    let soak_requests = (target_rate * args.duration.as_secs_f64()).ceil() as usize;
    let soak_lines = gen_request_lines(&LoadConfig {
        requests: soak_requests.max(64),
        seed: args.seed ^ 0x5eed,
        ..LoadConfig::default()
    });
    let soak = match run_phase(&args, &soak_lines, Some(pace), Some(cal_p99)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: soak failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let artifact = artifact_json(&soak, &args, target_rate);
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &artifact) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("loadgen: wrote {path}");
    }
    print!("{artifact}");

    let mut failed = false;
    if soak.lost() > 0 {
        eprintln!("FAIL: {} request(s) lost (no response)", soak.lost());
        failed = true;
    }
    if !soak.exit_ok {
        eprintln!("FAIL: server did not shut down cleanly");
        failed = true;
    }
    let rss_mb = soak.peak_rss_kb / 1024;
    if rss_mb > args.max_rss_mb {
        eprintln!(
            "FAIL: peak RSS {rss_mb} MB exceeds bound {} MB",
            args.max_rss_mb
        );
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    eprintln!(
        "loadgen: OK — 0 lost, peak RSS {rss_mb} MB, clean exit, \
         shed rate {:.1}%",
        soak.shed_rate() * 100.0
    );
    ExitCode::SUCCESS
}
