//! Ablation studies beyond the paper's figures:
//!
//! * `--study floor`: how much schedulability the cheap `b̄` bound gives
//!   away versus the exact-antichain concurrency floor (extension).
//! * `--study heuristic`: Algorithm 1 acceptance under worst-fit (the
//!   paper's tie-breaker) versus first-fit and best-fit.
//!
//! ```text
//! ablation [--study floor|heuristic|all] [--sets N] [--seed S] [--threads T]
//! ```

use std::process::ExitCode;

use rtpool_bench::ablation;
use rtpool_bench::sweep::SweepPool;

fn main() -> ExitCode {
    let mut study = String::from("all");
    let mut sets = 200usize;
    let mut seed = 0xab1au64;
    let mut threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        let result = match flag.as_str() {
            "--study" => value("--study").map(|v| study = v),
            "--sets" => value("--sets").and_then(|v| {
                v.parse()
                    .map(|v| sets = v)
                    .map_err(|e| format!("invalid --sets: {e}"))
            }),
            "--seed" => value("--seed").and_then(|v| {
                v.parse()
                    .map(|v| seed = v)
                    .map_err(|e| format!("invalid --seed: {e}"))
            }),
            "--threads" => value("--threads").and_then(|v| {
                v.parse()
                    .map(|v| threads = v)
                    .map_err(|e| format!("invalid --threads: {e}"))
            }),
            "--help" | "-h" => {
                println!("usage: ablation [--study floor|heuristic|all] [--sets N] [--seed S] [--threads T]");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(e) = result {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    // One worker pool for the whole process; both studies share it.
    let pool = SweepPool::new(threads);
    if study == "floor" || study == "all" {
        println!("Ablation: concurrency floor (global RTA, m=8, U=0.4n; {sets} sets/point)");
        println!(
            "{:>4} | {:>10} | {:>12} | {:>14}",
            "n", "oblivious", "b̄ (paper)", "exact (ext.)"
        );
        println!("{}", "-".repeat(50));
        for p in ablation::concurrency_floor_ablation(&pool, sets, seed) {
            println!(
                "{:>4} | {:>10.3} | {:>12.3} | {:>14.3}",
                p.n, p.full, p.limited, p.limited_exact
            );
        }
        println!();
    }
    if study == "heuristic" || study == "all" {
        println!("Ablation: Algorithm 1 tie-breaking (partitioned, n=4, U=1.0; {sets} sets/point)");
        println!(
            "{:>4} | {:>10} | {:>10} | {:>10}",
            "m", "worst-fit", "first-fit", "best-fit"
        );
        println!("{}", "-".repeat(44));
        for p in ablation::heuristic_ablation(&pool, sets, seed) {
            println!(
                "{:>4} | {:>10.3} | {:>10.3} | {:>10.3}",
                p.m, p.worst_fit, p.first_fit, p.best_fit
            );
        }
    }
    ExitCode::SUCCESS
}
