//! Emits `BENCH_analysis.json`: before/after medians for the hot
//! schedulability kernels plus end-to-end Figure 2 sample throughput.
//!
//! "Before" replays the pre-cache pipeline: every analysis call receives
//! task DAGs with an empty derived-artifact cache
//! ([`rtpool_graph::Dag::clone_uncached`]) and runs the two global models
//! as separate passes, so reachability, volume, critical paths, delay
//! sets, and the blocking antichain are recomputed per call — exactly
//! the sharing behavior of the previous code. "After" analyzes the
//! shared cached sets through the batched
//! [`rtpool_bench::pipeline`] entry points.
//!
//! The corpus is pre-generated from a fixed seed outside every timed
//! region, and both modes are checked to produce bit-identical verdicts
//! before the numbers are written.
//!
//! Usage: `bench_summary [--quick] [--out PATH]`

use std::time::Instant;

use rand::SeedableRng;
use rtpool_bench::pipeline;
use rtpool_core::analysis::global::{self, ConcurrencyModel};
use rtpool_core::analysis::partitioned::PartitionStrategy;
use rtpool_core::analysis::SchedResult;
use rtpool_core::{Task, TaskSet};
use rtpool_gen::{DagGenConfig, TaskSetConfig};

const M: usize = 8;
const N_TASKS: usize = 4;
const UTILIZATION: f64 = 2.0;
const BASE_SEED: u64 = 0x5eed_f00d;

struct Config {
    corpus_size: usize,
    reps: usize,
    quick: bool,
    out: String,
}

fn main() {
    let mut cfg = Config {
        corpus_size: 40,
        reps: 5,
        quick: false,
        out: "BENCH_analysis.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                cfg.quick = true;
                cfg.corpus_size = 8;
                cfg.reps = 3;
            }
            "--out" => cfg.out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_summary [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "generating corpus: {} sets (n={N_TASKS}, U={UTILIZATION}, m={M}, seed={BASE_SEED:#x})",
        cfg.corpus_size
    );
    let corpus: Vec<TaskSet> = (0..cfg.corpus_size as u64)
        .map(|i| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(BASE_SEED.wrapping_add(i));
            TaskSetConfig::new(N_TASKS, UTILIZATION, DagGenConfig::default())
                .generate(&mut rng)
                .expect("corpus generation")
        })
        .collect();

    // Correctness gate: the cached pipeline must produce bit-identical
    // verdicts to the uncached replay on every corpus set.
    let verdicts_match = corpus
        .iter()
        .all(|set| battery_verdicts_before(set) == battery_verdicts_after(set));
    assert!(verdicts_match, "cached and uncached verdicts diverged");
    eprintln!(
        "verdict check: cached == uncached on all {} sets",
        corpus.len()
    );

    let kernels = [
        (
            "concurrency_bounds",
            "delay rows + b-bar + exact blocking antichain per task",
            measure(&corpus, cfg.reps, |set| {
                for (_, t) in set.iter() {
                    let dag = t.dag().clone_uncached();
                    std::hint::black_box(dag.delay_profile().max_delay_count());
                    std::hint::black_box(dag.max_blocking_antichain().len());
                }
            }),
            measure(&corpus, cfg.reps, |set| {
                for (_, t) in set.iter() {
                    std::hint::black_box(t.dag().delay_profile().max_delay_count());
                    std::hint::black_box(t.dag().max_blocking_antichain().len());
                }
            }),
        ),
        (
            "global_rta",
            "global RTA under Full + Limited concurrency models",
            measure(&corpus, cfg.reps, |set| {
                let s = rebuild_uncached(set);
                std::hint::black_box(global::analyze(&s, M, ConcurrencyModel::Full));
                let s = rebuild_uncached(set);
                std::hint::black_box(global::analyze(&s, M, ConcurrencyModel::Limited));
            }),
            measure(&corpus, cfg.reps, |set| {
                std::hint::black_box(pipeline::global_full_and_limited(set, M));
            }),
        ),
        (
            "partitioned_rta",
            "worst-fit partitioning + partitioned RTA",
            measure(&corpus, cfg.reps, |set| {
                let s = rebuild_uncached(set);
                std::hint::black_box(pipeline::partition_and(&s, M, PartitionStrategy::WorstFit));
            }),
            measure(&corpus, cfg.reps, |set| {
                std::hint::black_box(pipeline::partition_and(set, M, PartitionStrategy::WorstFit));
            }),
        ),
        (
            "algorithm1",
            "Algorithm 1 delay-aware partitioning + partitioned RTA",
            measure(&corpus, cfg.reps, |set| {
                let s = rebuild_uncached(set);
                std::hint::black_box(pipeline::partition_and(
                    &s,
                    M,
                    PartitionStrategy::Algorithm1,
                ));
            }),
            measure(&corpus, cfg.reps, |set| {
                std::hint::black_box(pipeline::partition_and(
                    set,
                    M,
                    PartitionStrategy::Algorithm1,
                ));
            }),
        ),
    ];

    // End-to-end Figure 2 sample evaluation: the full verdict battery a
    // fig2 sample runs (global pair + both partitioned strategies),
    // generation excluded, single thread.
    let fig2_before = throughput(&corpus, cfg.reps, |set| {
        std::hint::black_box(battery_verdicts_before(set));
    });
    let fig2_after = throughput(&corpus, cfg.reps, |set| {
        std::hint::black_box(battery_verdicts_after(set));
    });

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"derived-analysis cache + kernel optimization\",\n");
    json.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    json.push_str(&format!(
        "  \"corpus\": {{ \"sets\": {}, \"n_tasks\": {N_TASKS}, \"utilization\": {UTILIZATION}, \"m\": {M}, \"seed\": {BASE_SEED}, \"threads\": 1 }},\n",
        corpus.len()
    ));
    json.push_str("  \"kernels\": {\n");
    for (i, (name, what, before_ns, after_ns)) in kernels.iter().enumerate() {
        let speedup = *before_ns as f64 / (*after_ns).max(1) as f64;
        json.push_str(&format!(
            "    \"{name}\": {{ \"what\": \"{what}\", \"before_median_ns\": {before_ns}, \"after_median_ns\": {after_ns}, \"speedup\": {speedup:.2} }}{}\n",
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"fig2_end_to_end\": {{ \"what\": \"full per-sample verdict battery, generation excluded\", \"before_samples_per_sec\": {fig2_before:.1}, \"after_samples_per_sec\": {fig2_after:.1}, \"speedup\": {:.2}, \"verdicts_match\": {verdicts_match} }}\n",
        fig2_after / fig2_before.max(f64::MIN_POSITIVE)
    ));
    json.push_str("}\n");

    std::fs::write(&cfg.out, &json).expect("write BENCH_analysis.json");
    eprintln!("wrote {}", cfg.out);
    print!("{json}");
}

/// Rebuilds `set` with structurally-identical DAGs whose derived caches
/// are empty, replaying the pre-cache cost model where every analysis
/// call recomputes its artifacts.
fn rebuild_uncached(set: &TaskSet) -> TaskSet {
    TaskSet::new(
        set.as_slice()
            .iter()
            .map(|t| {
                Task::new(t.dag().clone_uncached(), t.period(), t.deadline())
                    .expect("rebuilt task is valid")
            })
            .collect(),
    )
}

/// All four verdicts of the fig2 battery, pre-cache cost model.
fn battery_verdicts_before(set: &TaskSet) -> [SchedResult; 4] {
    let full = global::analyze(&rebuild_uncached(set), M, ConcurrencyModel::Full);
    let limited = global::analyze(&rebuild_uncached(set), M, ConcurrencyModel::Limited);
    let wf = pipeline::partition_and(&rebuild_uncached(set), M, PartitionStrategy::WorstFit).0;
    let a1 = pipeline::partition_and(&rebuild_uncached(set), M, PartitionStrategy::Algorithm1).0;
    [full, limited, wf, a1]
}

/// All four verdicts of the fig2 battery, cached pipeline.
fn battery_verdicts_after(set: &TaskSet) -> [SchedResult; 4] {
    let (full, limited) = pipeline::global_full_and_limited(set, M);
    let wf = pipeline::partition_and(set, M, PartitionStrategy::WorstFit).0;
    let a1 = pipeline::partition_and(set, M, PartitionStrategy::Algorithm1).0;
    [full, limited, wf, a1]
}

/// Median over `reps` repetitions of the per-set mean time of `f`, in ns.
fn measure(corpus: &[TaskSet], reps: usize, mut f: impl FnMut(&TaskSet)) -> u128 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        for set in corpus {
            f(set);
        }
        samples.push(start.elapsed().as_nanos() / corpus.len().max(1) as u128);
    }
    median(samples)
}

/// Median samples-per-second over `reps` repetitions of evaluating the
/// whole corpus with `f`.
fn throughput(corpus: &[TaskSet], reps: usize, mut f: impl FnMut(&TaskSet)) -> f64 {
    let mut rates = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        for set in corpus {
            f(set);
        }
        rates.push(corpus.len() as f64 / start.elapsed().as_secs_f64());
    }
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    rates[rates.len() / 2]
}

fn median(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    let n = samples.len();
    if n == 0 {
        0
    } else if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2
    }
}
