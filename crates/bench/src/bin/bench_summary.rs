//! Emits `BENCH_analysis.json`: before/after medians for the hot
//! schedulability kernels, the windowed-generation kernel, end-to-end
//! Figure 2 sample throughput, and the insets-(a)/(b) battery including
//! generation.
//!
//! "Before" replays the pre-optimization pipelines: analysis calls
//! receive task DAGs with an empty derived-artifact cache
//! ([`rtpool_graph::Dag::clone_uncached`]), generation builds (and
//! validates) a full `Dag` per rejection-sampling attempt
//! ([`rtpool_gen::TaskSetConfig::generate_reference`]), and the
//! (a)/(b) battery spawns a scope of OS threads per point
//! ([`rtpool_bench::fig2::run_point_reference`]). "After" uses the
//! cached [`rtpool_bench::pipeline`] entry points, the scratch-buffer
//! generation fast path with its early `b̄` window prefilter, and the
//! persistent work-stealing [`rtpool_bench::sweep::SweepPool`].
//!
//! Every before/after pair is gated on bit-identical outputs
//! (`verdicts_match`, `generation.series_match`,
//! `fig2_ab_end_to_end.series_match`) before the numbers are written.
//!
//! Usage: `bench_summary [--quick] [--out PATH] [--trace PATH] [--serve]`
//!
//! `--trace PATH` additionally replays the first corpus set under the
//! simulator with event tracing and writes the Chrome trace-event JSON
//! to `PATH` — a profiling artifact for inspecting what the measured
//! battery actually schedules.
//!
//! `--serve` switches to the admission-service benchmark instead:
//! sustained verdict throughput on an 8-worker in-process
//! [`rtpool_bench::serve::Server`], p50/p99 service latency, and the
//! shed rate at 2× overload (SLO pinned to the sustained-phase p99).
//! Writes `BENCH_serve.json` (or `--out PATH`).
//!
//! `--incremental` switches to the incremental-analysis benchmark
//! instead: on a task set whose biggest DAG has ≥ 10⁴ nodes, a sequence
//! of single-node WCET edits is answered by `Dag::edit` (derived cache
//! patched in place) plus warm-started RTA
//! ([`rtpool_core::analysis::incremental::analyze_many_warm`]), and by
//! the from-scratch path (uncached rebuild + cold RTA). Every edit is
//! gated on bit-identical verdicts across all three concurrency models
//! before the numbers are written; in full mode the incremental path
//! must be ≥ 10× faster. Writes `BENCH_incremental.json`
//! (or `--out PATH`).
//!
//! `--exec` switches to the executor dispatch benchmark instead: the v1
//! condvar engine vs the v2 lock-free injector/stealer engine on a
//! dispatch-bound workload (a wide flat fork-join of wcet-1 nodes at
//! `time_scale` zero — the bodies are free, so the measured cost is
//! dispatch itself) at m ∈ {4, 8, 16, 32}. Every run is gated on full
//! execution and an untouched available-concurrency floor; in full mode
//! the v2 engine must reach ≥ 2× the v1 node throughput at m = 16 and
//! m = 32. Writes `BENCH_exec.json` (or `--out PATH`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rtpool_bench::fig2::{run_insets, run_point_reference, Fig2Params, Inset, SeriesPoint};
use rtpool_bench::pipeline;
use rtpool_bench::serve::loadgen::{drive, gen_request_lines, LoadConfig};
use rtpool_bench::serve::{BreakerConfig, ServeConfig, Server};
use rtpool_bench::sweep::SweepPool;
use rtpool_core::analysis::global::{self, ConcurrencyModel};
use rtpool_core::analysis::incremental::analyze_many_warm;
use rtpool_core::analysis::partitioned::PartitionStrategy;
use rtpool_core::analysis::SchedResult;
use rtpool_core::CancelToken;
use rtpool_core::{Task, TaskSet};
use rtpool_gen::{BlockingPolicy, ConcurrencyWindow, DagGenConfig, DagScratch, TaskSetConfig};

const M: usize = 8;
const N_TASKS: usize = 4;
const UTILIZATION: f64 = 2.0;
const BASE_SEED: u64 = 0x5eed_f00d;

struct Config {
    corpus_size: usize,
    reps: usize,
    quick: bool,
    out: String,
    trace: Option<String>,
    serve: bool,
    exec: bool,
    incremental: bool,
}

fn main() {
    let mut cfg = Config {
        corpus_size: 40,
        reps: 5,
        quick: false,
        out: String::new(),
        trace: None,
        serve: false,
        exec: false,
        incremental: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                cfg.quick = true;
                cfg.corpus_size = 8;
                cfg.reps = 3;
            }
            "--out" => cfg.out = args.next().expect("--out needs a path"),
            "--trace" => cfg.trace = Some(args.next().expect("--trace needs a path")),
            "--serve" => cfg.serve = true,
            "--exec" => cfg.exec = true,
            "--incremental" => cfg.incremental = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_summary [--quick] [--out PATH] [--trace PATH] [--serve] \
                     [--exec] [--incremental]"
                );
                std::process::exit(2);
            }
        }
    }
    if cfg.out.is_empty() {
        cfg.out = if cfg.serve {
            "BENCH_serve.json".to_string()
        } else if cfg.exec {
            "BENCH_exec.json".to_string()
        } else if cfg.incremental {
            "BENCH_incremental.json".to_string()
        } else {
            "BENCH_analysis.json".to_string()
        };
    }
    if cfg.serve {
        serve_benchmark(&cfg);
        return;
    }
    if cfg.exec {
        exec_benchmark(&cfg);
        return;
    }
    if cfg.incremental {
        incremental_benchmark(&cfg);
        return;
    }

    eprintln!(
        "generating corpus: {} sets (n={N_TASKS}, U={UTILIZATION}, m={M}, seed={BASE_SEED:#x})",
        cfg.corpus_size
    );
    let corpus: Vec<TaskSet> = (0..cfg.corpus_size as u64)
        .map(|i| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(BASE_SEED.wrapping_add(i));
            TaskSetConfig::new(N_TASKS, UTILIZATION, DagGenConfig::default())
                .generate(&mut rng)
                .expect("corpus generation")
        })
        .collect();

    if let Some(path) = &cfg.trace {
        // Profiling hook: what does one measured sample actually
        // schedule? Replay corpus set 0 with event tracing and export it
        // through the shared rtpool-trace exporter.
        let mut outcome =
            rtpool_sim::SimConfig::single_job(rtpool_sim::SchedulingPolicy::Global, M)
                .with_event_trace()
                .run(&corpus[0])
                .expect("corpus set simulates");
        let trace = outcome
            .take_event_trace()
            .expect("event tracing was enabled");
        std::fs::write(path, rtpool_trace::to_chrome_json(&trace)).expect("write trace");
        eprintln!("wrote event trace of corpus set 0 to {path}");
    }

    // Correctness gate: the cached pipeline must produce bit-identical
    // verdicts to the uncached replay on every corpus set.
    let verdicts_match = corpus
        .iter()
        .all(|set| battery_verdicts_before(set) == battery_verdicts_after(set));
    assert!(verdicts_match, "cached and uncached verdicts diverged");
    eprintln!(
        "verdict check: cached == uncached on all {} sets",
        corpus.len()
    );

    let kernels = [
        (
            "concurrency_bounds",
            "delay rows + b-bar + exact blocking antichain per task",
            measure(&corpus, cfg.reps, |set| {
                for (_, t) in set.iter() {
                    let dag = t.dag().clone_uncached();
                    std::hint::black_box(dag.delay_profile().max_delay_count());
                    std::hint::black_box(dag.max_blocking_antichain().len());
                }
            }),
            measure(&corpus, cfg.reps, |set| {
                for (_, t) in set.iter() {
                    std::hint::black_box(t.dag().delay_profile().max_delay_count());
                    std::hint::black_box(t.dag().max_blocking_antichain().len());
                }
            }),
        ),
        (
            "global_rta",
            "global RTA under Full + Limited concurrency models",
            measure(&corpus, cfg.reps, |set| {
                let s = rebuild_uncached(set);
                std::hint::black_box(global::analyze(&s, M, ConcurrencyModel::Full));
                let s = rebuild_uncached(set);
                std::hint::black_box(global::analyze(&s, M, ConcurrencyModel::Limited));
            }),
            measure(&corpus, cfg.reps, |set| {
                std::hint::black_box(pipeline::global_full_and_limited(set, M));
            }),
        ),
        (
            "partitioned_rta",
            "worst-fit partitioning + partitioned RTA",
            measure(&corpus, cfg.reps, |set| {
                let s = rebuild_uncached(set);
                std::hint::black_box(pipeline::partition_and(&s, M, PartitionStrategy::WorstFit));
            }),
            measure(&corpus, cfg.reps, |set| {
                std::hint::black_box(pipeline::partition_and(set, M, PartitionStrategy::WorstFit));
            }),
        ),
        (
            "algorithm1",
            "Algorithm 1 delay-aware partitioning + partitioned RTA",
            measure(&corpus, cfg.reps, |set| {
                let s = rebuild_uncached(set);
                std::hint::black_box(pipeline::partition_and(
                    &s,
                    M,
                    PartitionStrategy::Algorithm1,
                ));
            }),
            measure(&corpus, cfg.reps, |set| {
                std::hint::black_box(pipeline::partition_and(
                    set,
                    M,
                    PartitionStrategy::Algorithm1,
                ));
            }),
        ),
    ];

    // End-to-end Figure 2 sample evaluation: the full verdict battery a
    // fig2 sample runs (global pair + both partitioned strategies),
    // generation excluded, single thread.
    let fig2_before = throughput(&corpus, cfg.reps, |set| {
        std::hint::black_box(battery_verdicts_before(set));
    });
    let fig2_after = throughput(&corpus, cfg.reps, |set| {
        std::hint::black_box(battery_verdicts_after(set));
    });

    // Windowed-generation kernel: the inset (a) cost model (resampled
    // blocking probability, concurrency window, rejection sampling),
    // full-build reference path vs scratch fast path. Identical RNG
    // streams, so the produced sets must match exactly.
    let gen_samples = if cfg.quick { 8 } else { 24 };
    let (gen_before_ns, sets_ref) = measure_generation(gen_samples, cfg.reps, false);
    let (gen_after_ns, sets_fast) = measure_generation(gen_samples, cfg.reps, true);
    let generation_match = sets_ref == sets_fast;
    assert!(
        generation_match,
        "generation fast path diverged from reference"
    );
    eprintln!("generation check: fast path == reference on all {gen_samples} samples");

    // Insets (a)/(b) battery end to end, generation included: the
    // reference path (scoped threads per point + full-build generation)
    // vs one sweep over the persistent pool with the scratch fast path.
    // Single worker on both sides; the series must be bit-identical.
    let ab_params = Fig2Params {
        sets_per_point: if cfg.quick { 3 } else { 25 },
        seed: BASE_SEED,
        threads: 1,
    };
    let ab_insets = [Inset::A, Inset::B];
    let start = Instant::now();
    let series_ref: Vec<SeriesPoint> = ab_insets
        .iter()
        .flat_map(|&inset| {
            inset
                .x_values()
                .into_iter()
                .map(move |x| run_point_reference(inset, x, &ab_params))
        })
        .collect();
    let ab_before_secs = start.elapsed().as_secs_f64();
    let pool = SweepPool::new(1);
    let start = Instant::now();
    let series_fast: Vec<SeriesPoint> = run_insets(&pool, &ab_insets, &ab_params)
        .into_iter()
        .flat_map(|(_, series)| series)
        .collect();
    let ab_after_secs = start.elapsed().as_secs_f64();
    let series_match = series_ref == series_fast;
    assert!(series_match, "sweep-engine series diverged from reference");
    eprintln!(
        "series check: sweep engine == reference on insets (a)/(b) \
         ({} points, {} sets/point)",
        series_fast.len(),
        ab_params.sets_per_point
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"benchmark\": \"derived-analysis cache + sweep engine + generation fast path\",\n",
    );
    json.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    json.push_str(&format!(
        "  \"corpus\": {{ \"sets\": {}, \"n_tasks\": {N_TASKS}, \"utilization\": {UTILIZATION}, \"m\": {M}, \"seed\": {BASE_SEED}, \"threads\": 1 }},\n",
        corpus.len()
    ));
    json.push_str("  \"kernels\": {\n");
    for (i, (name, what, before_ns, after_ns)) in kernels.iter().enumerate() {
        let speedup = *before_ns as f64 / (*after_ns).max(1) as f64;
        json.push_str(&format!(
            "    \"{name}\": {{ \"what\": \"{what}\", \"before_median_ns\": {before_ns}, \"after_median_ns\": {after_ns}, \"speedup\": {speedup:.2} }}{}\n",
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"generation\": {{ \"what\": \"windowed task-set generation (inset (a) cost model): scratch fast path + early b-bar prefilter vs full build per attempt\", \"before_median_ns\": {gen_before_ns}, \"after_median_ns\": {gen_after_ns}, \"speedup\": {:.2}, \"series_match\": {generation_match} }},\n",
        gen_before_ns as f64 / (gen_after_ns.max(1)) as f64
    ));
    json.push_str(&format!(
        "  \"fig2_end_to_end\": {{ \"what\": \"full per-sample verdict battery, generation excluded\", \"before_samples_per_sec\": {fig2_before:.1}, \"after_samples_per_sec\": {fig2_after:.1}, \"speedup\": {:.2}, \"verdicts_match\": {verdicts_match} }},\n",
        fig2_after / fig2_before.max(f64::MIN_POSITIVE)
    ));
    json.push_str(&format!(
        "  \"fig2_ab_end_to_end\": {{ \"what\": \"insets (a)+(b) battery including generation: per-point scoped threads + full-build generation vs persistent sweep pool + scratch fast path\", \"sets_per_point\": {}, \"before_secs\": {ab_before_secs:.3}, \"after_secs\": {ab_after_secs:.3}, \"speedup\": {:.2}, \"series_match\": {series_match} }}\n",
        ab_params.sets_per_point,
        ab_before_secs / ab_after_secs.max(f64::MIN_POSITIVE)
    ));
    json.push_str("}\n");

    std::fs::write(&cfg.out, &json).expect("write BENCH_analysis.json");
    eprintln!("wrote {}", cfg.out);
    print!("{json}");
}

/// Rebuilds `set` with structurally-identical DAGs whose derived caches
/// are empty, replaying the pre-cache cost model where every analysis
/// call recomputes its artifacts.
fn rebuild_uncached(set: &TaskSet) -> TaskSet {
    TaskSet::new(
        set.as_slice()
            .iter()
            .map(|t| {
                Task::new(t.dag().clone_uncached(), t.period(), t.deadline())
                    .expect("rebuilt task is valid")
            })
            .collect(),
    )
}

/// All four verdicts of the fig2 battery, pre-cache cost model.
fn battery_verdicts_before(set: &TaskSet) -> [SchedResult; 4] {
    let full = global::analyze(&rebuild_uncached(set), M, ConcurrencyModel::Full);
    let limited = global::analyze(&rebuild_uncached(set), M, ConcurrencyModel::Limited);
    let wf = pipeline::partition_and(&rebuild_uncached(set), M, PartitionStrategy::WorstFit).0;
    let a1 = pipeline::partition_and(&rebuild_uncached(set), M, PartitionStrategy::Algorithm1).0;
    [full, limited, wf, a1]
}

/// All four verdicts of the fig2 battery, cached pipeline.
fn battery_verdicts_after(set: &TaskSet) -> [SchedResult; 4] {
    let (full, limited) = pipeline::global_full_and_limited(set, M);
    let wf = pipeline::partition_and(set, M, PartitionStrategy::WorstFit).0;
    let a1 = pipeline::partition_and(set, M, PartitionStrategy::Algorithm1).0;
    [full, limited, wf, a1]
}

/// One windowed-generation sample: the inset (a) cost model (resampled
/// blocking-promotion probability, concurrency window, rejection
/// sampling) without the analysis battery.
fn generate_windowed(sample: u64, fast: bool, scratch: &mut DagScratch) -> Option<TaskSet> {
    let x = 1 + (sample % 8) as i64; // cycle the inset (a) sweep
    let mut rng =
        rand::rngs::StdRng::seed_from_u64(BASE_SEED ^ sample.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let window = ConcurrencyWindow {
        m: M,
        l_min: (x - 1).max(1),
        l_max: x,
        max_attempts: 60,
    };
    for _ in 0..40 {
        let p: f64 = rng.gen();
        let dag_cfg = DagGenConfig {
            blocking: BlockingPolicy::Fixed(p),
            ..DagGenConfig::default()
        };
        let cfg =
            TaskSetConfig::new(N_TASKS, 0.5 * M as f64, dag_cfg).with_concurrency_window(window);
        let result = if fast {
            cfg.generate_with(&mut rng, scratch)
        } else {
            cfg.generate_reference(&mut rng)
        };
        if let Ok(set) = result {
            return Some(set);
        }
    }
    None
}

/// Times `samples` windowed generations per repetition; returns the
/// median per-sample time in ns plus a structural fingerprint of the
/// generated sets (node count, volume, period per task) for the
/// fast == reference gate.
fn measure_generation(samples: usize, reps: usize, fast: bool) -> (u128, Vec<(usize, u64, u64)>) {
    let mut scratch = DagScratch::new();
    let mut times = Vec::with_capacity(reps);
    let mut fingerprint = Vec::new();
    for _ in 0..reps {
        fingerprint.clear();
        let start = Instant::now();
        for sample in 0..samples as u64 {
            match generate_windowed(sample, fast, &mut scratch) {
                Some(set) => {
                    for (_, task) in set.iter() {
                        fingerprint.push((
                            task.dag().node_count(),
                            task.dag().volume(),
                            task.period(),
                        ));
                    }
                }
                None => fingerprint.push((0, 0, 0)),
            }
        }
        times.push(start.elapsed().as_nanos() / samples.max(1) as u128);
    }
    (median(times), fingerprint)
}

/// Median over `reps` repetitions of the per-set mean time of `f`, in ns.
fn measure(corpus: &[TaskSet], reps: usize, mut f: impl FnMut(&TaskSet)) -> u128 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        for set in corpus {
            f(set);
        }
        samples.push(start.elapsed().as_nanos() / corpus.len().max(1) as u128);
    }
    median(samples)
}

/// Median samples-per-second over `reps` repetitions of evaluating the
/// whole corpus with `f`.
fn throughput(corpus: &[TaskSet], reps: usize, mut f: impl FnMut(&TaskSet)) -> f64 {
    let mut rates = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        for set in corpus {
            f(set);
        }
        rates.push(corpus.len() as f64 / start.elapsed().as_secs_f64());
    }
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    rates[rates.len() / 2]
}

fn median(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    let n = samples.len();
    if n == 0 {
        0
    } else if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2
    }
}

/// Runs the admission-service benchmark and writes `BENCH_serve.json`.
///
/// Phase A drives an unpaced seeded request stream through an
/// 8-worker in-process [`Server`] with a permissive SLO, measuring
/// sustained verdict throughput and the p50/p99 service latency.
/// Phase B submits a doubled stream from two concurrent client
/// threads — each paced at the sustained rate, so combined arrival is
/// 2x — with the breaker SLO pinned to phase A's p99, so the circuit
/// breaker trips and the shed rate under overload is measured. Two
/// submitters matter: `Server::submit` parses on the caller's thread,
/// so a single paced client can never outrun the rate it just
/// measured.
fn serve_benchmark(cfg: &Config) {
    const WORKERS: usize = 8;
    let requests = if cfg.quick { 512 } else { 2048 };
    let load = LoadConfig {
        requests,
        ..LoadConfig::default()
    };
    let lines = gen_request_lines(&load);
    let drain = Duration::from_secs(30);

    eprintln!(
        "serve benchmark: phase A — sustained throughput ({requests} requests, {WORKERS} workers)"
    );
    let config_a = ServeConfig {
        breaker: BreakerConfig {
            slo_p99_us: 10_000_000,
            ..BreakerConfig::default()
        },
        ..ServeConfig::default()
    };
    let (server, rx) = Server::start(config_a, Arc::new(SweepPool::new(WORKERS)));
    let sustained = drive(&server, &rx, &lines, None, drain);
    let report_a = server.shutdown();
    let rate = sustained.answered as f64 / sustained.elapsed.as_secs_f64().max(1e-9);
    let p50_a = sustained.p50_us().unwrap_or(0);
    let p99_a = sustained.p99_us().unwrap_or(1000).max(100);
    eprintln!(
        "  sustained: {rate:.0} verdicts/s, p50 {p50_a} µs, p99 {p99_a} µs, queue peak {}",
        report_a.queue_peak
    );

    // Four clients each pace against an absolute schedule at target/4,
    // so request parsing (which happens on the submitting thread) does
    // not serialize with the pacing sleeps and the combined arrival
    // rate genuinely reaches 2x the sustained rate.
    const CLIENTS: usize = 4;
    let target = rate * 2.0;
    let client_pace = Duration::from_secs_f64(CLIENTS as f64 / target.max(1.0));
    eprintln!(
        "serve benchmark: phase B — 2x overload ({target:.0} req/s across {CLIENTS} clients, \
         SLO p99 {p99_a} µs)"
    );
    let config_b = ServeConfig {
        breaker: BreakerConfig {
            slo_p99_us: p99_a,
            ..BreakerConfig::default()
        },
        ..ServeConfig::default()
    };
    let lines_b = gen_request_lines(&LoadConfig {
        requests: requests * 2,
        ..LoadConfig::default()
    });
    let (server, rx) = Server::start(config_b, Arc::new(SweepPool::new(WORKERS)));
    let sent_b = lines_b.len() as u64;
    let mut answered_b = 0u64;
    let mut lost_b = 0u64;
    let start_b = Instant::now();
    std::thread::scope(|scope| {
        for chunk in lines_b.chunks(lines_b.len().div_ceil(CLIENTS)) {
            let server = &server;
            scope.spawn(move || {
                let t0 = Instant::now();
                for (k, line) in chunk.iter().enumerate() {
                    let due = t0 + client_pace.mul_f64(k as f64);
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    server.submit(line);
                }
            });
        }
        // Every submitted line is answered exactly once (busy/shed at
        // submit, the rest by the analysis workers), so the collector
        // can count responses without tracking ids.
        while answered_b < sent_b {
            match rx.recv_timeout(drain) {
                Ok(_) => answered_b += 1,
                Err(_) => {
                    lost_b = sent_b - answered_b;
                    break;
                }
            }
        }
    });
    let elapsed_b = start_b.elapsed();
    let report_b = server.shutdown();
    let shed_rate = (report_b.shed + report_b.busy) as f64 / sent_b as f64;
    let realized = answered_b as f64 / elapsed_b.as_secs_f64().max(1e-9);
    eprintln!(
        "  overload: {realized:.0} arrivals/s realized, shed rate {:.1}% ({} shed, {} busy), \
         {lost_b} lost, breaker opened {} time(s)",
        shed_rate * 100.0,
        report_b.shed,
        report_b.busy,
        report_b.breaker.opens
    );
    if sustained.lost + lost_b > 0 {
        eprintln!("warning: lost responses detected — the artifact records them");
    }

    let json = format!(
        "{{\n  \"benchmark\": \"rtpool-serve admission service\",\n  \"workers\": {WORKERS},\n  \
         \"requests_per_phase\": {requests},\n  \"sustained\": {{\n    \
         \"verdicts_per_sec\": {rate:.1},\n    \"p50_us\": {p50_a},\n    \"p99_us\": {p99_a},\n    \
         \"admitted\": {},\n    \"rejected\": {},\n    \"errors\": {},\n    \"degraded\": {},\n    \
         \"interner_hits\": {},\n    \"memo_hits\": {},\n    \"lost\": {}\n  }},\n  \
         \"overload_2x\": {{\n    \"target_rate_per_sec\": {target:.1},\n    \
         \"realized_rate_per_sec\": {realized:.1},\n    \
         \"shed_rate\": {shed_rate:.4},\n    \"shed\": {},\n    \"busy\": {},\n    \
         \"answered\": {answered_b},\n    \
         \"p99_us\": {},\n    \"breaker_opens\": {},\n    \"breaker_reclosed\": {},\n    \
         \"lost\": {lost_b}\n  }}\n}}\n",
        sustained.admitted,
        sustained.rejected,
        sustained.errors,
        sustained.degraded,
        report_a.interner.hits,
        report_a.interner.memo_hits,
        sustained.lost,
        report_b.shed,
        report_b.busy,
        report_b.latency.quantile_upper(0.99).unwrap_or(0),
        report_b.breaker.opens,
        !report_b.breaker.open,
    );
    std::fs::write(&cfg.out, &json).expect("write serve benchmark artifact");
    eprintln!("wrote {}", cfg.out);
}

/// Builds a layered DAG — source → `layers` rows of `width` wcet-1
/// nodes (each wired to two nodes of the next row) → sink — of
/// `layers * width + 2` nodes, the incremental benchmark's big graph.
fn layered_dag(layers: usize, width: usize) -> rtpool_graph::Dag {
    use rtpool_graph::DagBuilder;
    let mut b = DagBuilder::with_capacities(layers * width + 2, 2 * layers * width + 2);
    let source = b.add_node(1);
    let rows: Vec<Vec<rtpool_graph::NodeId>> = (0..layers)
        .map(|_| (0..width).map(|_| b.add_node(1)).collect())
        .collect();
    for v in &rows[0] {
        b.add_edge(source, *v).expect("source edge");
    }
    for l in 0..layers - 1 {
        for (i, v) in rows[l].iter().enumerate() {
            b.add_edge(*v, rows[l + 1][i]).expect("straight edge");
            b.add_edge(*v, rows[l + 1][(i + 1) % width])
                .expect("diagonal edge");
        }
    }
    let sink = b.add_node(1);
    for v in &rows[layers - 1] {
        b.add_edge(*v, sink).expect("sink edge");
    }
    b.build().expect("layered dag is valid")
}

/// Runs the incremental-analysis benchmark (`--incremental`) and writes
/// `BENCH_incremental.json`: single-node WCET edits answered by
/// `Dag::edit` + warm-started RTA vs an uncached rebuild + cold RTA,
/// gated on bit-identical verdicts per edit (and on ≥ 10× speedup in
/// full mode).
fn incremental_benchmark(cfg: &Config) {
    let (layers, width) = if cfg.quick { (25, 40) } else { (100, 100) };
    let edits = if cfg.quick { 4 } else { 8 };
    let models = [
        ConcurrencyModel::Full,
        ConcurrencyModel::Limited,
        ConcurrencyModel::LimitedExact,
    ];
    let big = layered_dag(layers, width);
    let big_nodes = big.node_count();
    // Two light higher-priority tasks ahead of the big DAG, so warm
    // starts also exercise the hp-interference guard.
    let hp = |wcets: &[u64], period: u64| {
        let mut b = rtpool_graph::DagBuilder::new();
        let ids: Vec<_> = wcets.iter().map(|&w| b.add_node(w)).collect();
        b.add_chain(&ids).expect("chain");
        Task::new(b.build().expect("chain dag"), period, period).expect("hp task")
    };
    let period = (big_nodes as u64) * 4;
    let mut set = TaskSet::new(vec![
        hp(&[40, 40], 4_000),
        hp(&[60, 60, 60], 9_000),
        Task::new(big.clone(), period, period).expect("big task"),
    ]);
    eprintln!(
        "incremental benchmark: big DAG {big_nodes} nodes ({layers}x{width}), \
         {edits} WCET edits, m={M}, 3 models"
    );
    let never = CancelToken::never();

    // Warm the caches and the warm-start state once (steady-state server
    // behavior: the base set is resident before edits arrive).
    let (mut cold_base, _) = (global::analyze_many(&set, M, &models), ());
    let (warm_base, mut warm) =
        analyze_many_warm(&set, M, &models, &never, None).expect("never cancelled");
    assert_eq!(cold_base, warm_base, "cold pass must match before any edit");

    let big_index = 2usize;
    let mut incr_ns: Vec<u128> = Vec::with_capacity(edits);
    let mut scratch_ns: Vec<u128> = Vec::with_capacity(edits);
    let mut seeded_total = 0usize;
    let mut verdicts_match = true;
    for k in 0..edits {
        // Deterministically pick an interior node and bump its WCET.
        let node = 1 + (k * 7919) % (big_nodes - 2);
        let new_wcet = 2 + (k as u64 % 5);

        // Incremental path: patch the derived cache, warm-start the RTA.
        let t0 = Instant::now();
        let mut e = set.as_slice()[big_index].dag().edit();
        e.set_wcet(rtpool_graph::NodeId::from_index(node), new_wcet);
        let (edited, delta) = e.apply().expect("WCET edit is valid");
        assert!(delta.is_wcet_only());
        let mut tasks: Vec<Task> = set.as_slice().to_vec();
        tasks[big_index] = Task::new(edited, period, period).expect("edited task");
        let edited_set = TaskSet::new(tasks);
        let (warm_results, next_warm) =
            analyze_many_warm(&edited_set, M, &models, &never, Some(&warm)).expect("never");
        incr_ns.push(t0.elapsed().as_nanos());
        seeded_total += next_warm.seeded_tasks();

        // From-scratch path: uncached rebuild, cold RTA.
        let t0 = Instant::now();
        let rebuilt = rebuild_uncached(&edited_set);
        let cold_results = global::analyze_many(&rebuilt, M, &models);
        scratch_ns.push(t0.elapsed().as_nanos());

        verdicts_match &= warm_results == cold_results;
        assert!(
            verdicts_match,
            "edit {k}: warm-started verdicts diverged from cold recompute"
        );
        set = edited_set;
        warm = next_warm;
        cold_base = cold_results;
    }
    let _ = cold_base;
    let incr_med = median(incr_ns.clone());
    let scratch_med = median(scratch_ns.clone());
    let speedup = scratch_med as f64 / incr_med.max(1) as f64;
    let gate_10x = speedup >= 10.0;
    eprintln!(
        "  per-edit medians: incremental {incr_med} ns, from-scratch {scratch_med} ns \
         ({speedup:.1}x), {seeded_total} warm-seeded task fix-points"
    );
    if !cfg.quick {
        assert!(
            gate_10x,
            "incremental path must be >= 10x faster than from-scratch on \
             single-node WCET edits (got {speedup:.2}x)"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"benchmark\": \"incremental analysis: Dag::edit + warm-started RTA vs uncached rebuild + cold RTA\",\n",
    );
    json.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    json.push_str(&format!(
        "  \"workload\": {{ \"tasks\": 3, \"big_dag_nodes\": {big_nodes}, \"big_dag_shape\": \"{layers}x{width} layered\", \"m\": {M}, \"models\": [\"full\", \"limited\", \"limited_exact\"], \"edits\": {edits} }},\n"
    ));
    json.push_str(&format!(
        "  \"incremental\": {{ \"per_edit_median_ns\": {incr_med}, \"seeded_task_fixpoints\": {seeded_total} }},\n"
    ));
    json.push_str(&format!(
        "  \"from_scratch\": {{ \"per_edit_median_ns\": {scratch_med} }},\n"
    ));
    json.push_str(&format!("  \"speedup\": {speedup:.2},\n"));
    json.push_str(&format!("  \"verdicts_match\": {verdicts_match},\n"));
    json.push_str(&format!("  \"gate_10x\": {gate_10x}\n"));
    json.push_str("}\n");
    std::fs::write(&cfg.out, &json).expect("write incremental benchmark artifact");
    eprintln!("wrote {}", cfg.out);
    print!("{json}");
}

/// One engine × pool-size measurement of the dispatch benchmark.
/// `nodes_per_sec` is derived from the *best* repetition: the machine
/// shares a host, and external noise bursts only ever slow a rep down,
/// so min-of-reps is the standard noise-robust throughput estimator
/// (the median is kept for dispersion reporting).
struct ExecSample {
    nodes_per_sec: f64,
    best_job_ns: u128,
    median_job_ns: u128,
    span_p50_ns: u64,
    span_p99_ns: u64,
}

/// One engine's half of the interleaved measurement at one pool size.
struct ExecRunner {
    pool: rtpool_exec::ThreadPool,
    spans: rtpool_trace::LatencyHistogram,
    job_ns: Vec<u128>,
}

impl ExecRunner {
    fn new(
        m: usize,
        discipline: rtpool_exec::QueueDiscipline,
        engine: rtpool_exec::Engine,
        reps: usize,
    ) -> Self {
        use rtpool_exec::{PoolConfig, ThreadPool};
        ExecRunner {
            pool: ThreadPool::new(
                PoolConfig::new(m, discipline)
                    .with_engine(engine)
                    .with_time_scale(Duration::ZERO)
                    .with_watchdog(Duration::from_secs(30)),
            ),
            spans: rtpool_trace::LatencyHistogram::new(),
            job_ns: Vec::with_capacity(reps),
        }
    }

    /// One repetition: `jobs` back-to-back runs of the wide flat DAG.
    /// Every run is gated on full execution and the untouched
    /// available-concurrency floor (the workload has no blocking nodes,
    /// so `l(t)` must never drop below `m`).
    fn rep(&mut self, dag: &rtpool_graph::Dag, m: usize, jobs: usize) {
        let engine = self.pool.engine();
        let mut reports = Vec::with_capacity(jobs);
        // Only the pool runs inside the timed region; gating and span
        // accounting happen after the clock stops so the measured cost
        // is the dispatch engine's alone.
        let start = Instant::now();
        for _ in 0..jobs {
            reports.push(self.pool.run(dag).expect("benchmark run"));
        }
        self.job_ns
            .push(start.elapsed().as_nanos() / jobs.max(1) as u128);
        for report in reports {
            assert_eq!(
                report.executed_nodes,
                dag.node_count(),
                "{} at m={m}: incomplete run",
                engine.as_str()
            );
            assert_eq!(
                report.min_available_workers,
                m,
                "{} at m={m}: a non-blocking workload must not eat concurrency",
                engine.as_str()
            );
            for span in &report.spans {
                self.spans
                    .observe(u64::try_from((span.end - span.start).as_nanos()).unwrap_or(u64::MAX));
            }
        }
    }

    fn sample(self, nodes_per_job: usize) -> ExecSample {
        let best_job_ns = self.job_ns.iter().copied().min().unwrap_or(u128::MAX);
        let median_job_ns = median(self.job_ns);
        ExecSample {
            nodes_per_sec: nodes_per_job as f64 / (best_job_ns.max(1) as f64 / 1e9),
            best_job_ns,
            median_job_ns,
            span_p50_ns: self.spans.quantile_upper(0.50).unwrap_or(0),
            span_p99_ns: self.spans.quantile_upper(0.99).unwrap_or(0),
        }
    }
}

/// Measures both engines at one pool size with *interleaved* repetitions
/// (v1 rep, v2 rep, v1 rep, ...), so slow drift in background load hits
/// both engines equally instead of biasing whichever ran second.
///
/// The returned speedup is the **median of pairwise per-rep ratios**:
/// rep `i` of both engines runs back-to-back and shares its noise
/// environment, so `v1[i] / v2[i]` cancels host-level slowdowns that a
/// ratio of independently-picked best reps would mix across phases.
fn measure_exec_pair(
    dag: &rtpool_graph::Dag,
    m: usize,
    discipline: &rtpool_exec::QueueDiscipline,
    jobs: usize,
    reps: usize,
) -> (ExecSample, ExecSample, f64) {
    use rtpool_exec::Engine;
    let mut v1 = ExecRunner::new(m, discipline.clone(), Engine::V1Condvar, reps);
    let mut v2 = ExecRunner::new(m, discipline.clone(), Engine::V2LockFree, reps);
    // Warm-up rep for each: workers attached, queues touched, counters
    // exercised; discarded.
    v1.rep(dag, m, jobs.min(4));
    v2.rep(dag, m, jobs.min(4));
    v1.job_ns.clear();
    v2.job_ns.clear();
    for _ in 0..reps {
        v1.rep(dag, m, jobs);
        v2.rep(dag, m, jobs);
    }
    let mut ratios: Vec<f64> = v1
        .job_ns
        .iter()
        .zip(&v2.job_ns)
        .map(|(&a, &b)| a as f64 / b.max(1) as f64)
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    let speedup = ratios[ratios.len() / 2];
    let nodes = dag.node_count();
    (v1.sample(nodes), v2.sample(nodes), speedup)
}

/// Runs the executor dispatch benchmark (`--exec`) and writes
/// `BENCH_exec.json`: v1 condvar engine vs v2 lock-free engine at
/// m ∈ {4, 8, 16, 32} on a dispatch-bound wide flat fork-join.
fn exec_benchmark(cfg: &Config) {
    const WIDTH: usize = 256;
    const POOL_SIZES: [usize; 4] = [4, 8, 16, 32];
    // Full-mode reps are long (100 jobs ≈ 10–30 ms) so a single OS
    // scheduling burp cannot dominate a rep; quick mode stays short for
    // CI smoke use.
    let (jobs, reps) = if cfg.quick { (6, 3) } else { (100, 9) };

    // Source → WIDTH parallel wcet-1 nodes → sink, non-blocking, at
    // time_scale zero: node bodies cost nothing, so per-job time is the
    // dispatch engine's own overhead (v1: one pool-mutex round-trip plus
    // an m-wide notify_all broadcast per completion; v2: lock-free queue
    // ops plus one targeted unpark).
    let mut b = rtpool_graph::DagBuilder::new();
    let wcets = vec![1u64; WIDTH];
    b.fork_join(1, &wcets, 1, false).expect("flat fork-join");
    let dag = b.build().expect("valid dag");
    eprintln!(
        "exec benchmark: {} nodes/job, {jobs} jobs x {reps} reps per engine, m in {POOL_SIZES:?}",
        dag.node_count()
    );

    use rtpool_exec::QueueDiscipline;
    let disciplines = [
        ("global_fifo", QueueDiscipline::GlobalFifo),
        (
            "work_stealing",
            QueueDiscipline::WorkStealing { seed: BASE_SEED },
        ),
    ];
    let mut tables = Vec::new();
    for (name, discipline) in &disciplines {
        eprintln!("  discipline: {name}");
        let mut rows = Vec::new();
        for m in POOL_SIZES {
            let (v1, v2, speedup) = measure_exec_pair(&dag, m, discipline, jobs, reps);
            eprintln!(
                "    m={m:>2}: v1 {:>10.0} nodes/s | v2 {:>10.0} nodes/s | speedup {speedup:.2}x",
                v1.nodes_per_sec, v2.nodes_per_sec
            );
            rows.push((m, v1, v2, speedup));
        }
        tables.push((*name, rows));
    }

    // The 2x gate applies to the engine's headline discipline — the
    // injector/stealer work-stealing path, where v1 serializes every
    // local pop and steal under the one pool mutex.
    let ws = &tables
        .iter()
        .find(|(n, _)| *n == "work_stealing")
        .expect("ws table")
        .1;
    let speedup_at = |m: usize| {
        ws.iter()
            .find(|(size, ..)| *size == m)
            .map(|(_, _, _, s)| *s)
            .expect("measured pool size")
    };
    let (speedup_m16, speedup_m32) = (speedup_at(16), speedup_at(32));
    let gate_2x = speedup_m16 >= 2.0 && speedup_m32 >= 2.0;
    if !cfg.quick {
        assert!(
            gate_2x,
            "v2 engine must reach 2x the v1 dispatch throughput at m=16 and m=32 \
             under work stealing (got {speedup_m16:.2}x and {speedup_m32:.2}x)"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"executor dispatch engines: v1 condvar vs v2 lock-free\",\n");
    json.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    json.push_str(&format!(
        "  \"workload\": {{ \"shape\": \"source -> {WIDTH} x wcet-1 -> sink\", \"nodes\": {}, \"jobs_per_rep\": {jobs}, \"reps\": {reps}, \"time_scale_ns\": 0 }},\n",
        dag.node_count()
    ));
    json.push_str("  \"disciplines\": {\n");
    for (d, (name, rows)) in tables.iter().enumerate() {
        json.push_str(&format!("    \"{name}\": {{\n"));
        for (i, (m, v1, v2, speedup)) in rows.iter().enumerate() {
            json.push_str(&format!(
                "      \"m{m}\": {{ \"v1_condvar\": {{ \"nodes_per_sec\": {:.0}, \"best_job_ns\": {}, \"median_job_ns\": {}, \"span_p50_ns\": {}, \"span_p99_ns\": {} }}, \"v2_lockfree\": {{ \"nodes_per_sec\": {:.0}, \"best_job_ns\": {}, \"median_job_ns\": {}, \"span_p50_ns\": {}, \"span_p99_ns\": {} }}, \"speedup\": {speedup:.2} }}{}\n",
                v1.nodes_per_sec,
                v1.best_job_ns,
                v1.median_job_ns,
                v1.span_p50_ns,
                v1.span_p99_ns,
                v2.nodes_per_sec,
                v2.best_job_ns,
                v2.median_job_ns,
                v2.span_p50_ns,
                v2.span_p99_ns,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    }}{}\n",
            if d + 1 < tables.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"speedup_m16\": {speedup_m16:.2},\n  \"speedup_m32\": {speedup_m32:.2},\n  \"gate_2x\": {gate_2x}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&cfg.out, &json).expect("write exec benchmark artifact");
    eprintln!("wrote {}", cfg.out);
    print!("{json}");
}
