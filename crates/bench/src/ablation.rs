//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Concurrency floor**: the paper's `b̄`-based floor
//!    (`ConcurrencyModel::Limited`) versus the exact-antichain extension
//!    (`ConcurrencyModel::LimitedExact`) versus the oblivious baseline —
//!    how much schedulability the cheap bound gives away.
//! 2. **Algorithm 1 tie-breaking**: worst-fit (the paper's choice)
//!    versus first-fit and best-fit for the free placements at lines 11
//!    and 18.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::SeedableRng;
use rtpool_core::analysis::global::{self, ConcurrencyModel};
use rtpool_core::analysis::partitioned::{self, BlockingAwareness};
use rtpool_core::partition::{
    algorithm1_with, BestFit, FirstFit, NodeMapping, PlacementHeuristic, WorstFit,
};
use rtpool_core::{ConcurrencyAnalysis, TaskSet};
use rtpool_gen::{DagGenConfig, TaskSetConfig};

/// Acceptance ratios of the three global concurrency models at one
/// parameter point.
#[derive(Clone, Debug, PartialEq)]
pub struct FloorPoint {
    /// The swept task count.
    pub n: usize,
    /// Oblivious baseline acceptance.
    pub full: f64,
    /// `b̄`-based (paper) acceptance.
    pub limited: f64,
    /// Exact-antichain (extension) acceptance.
    pub limited_exact: f64,
}

/// Sweeps the task count (the Figure 2(e) setup) and reports the
/// acceptance of all three concurrency models.
#[must_use]
pub fn concurrency_floor_ablation(
    sets_per_point: usize,
    seed: u64,
    threads: usize,
) -> Vec<FloorPoint> {
    let m = 8;
    (1..=8)
        .map(|k| {
            let n = 2 * k;
            let counts = parallel_count(sets_per_point, threads, |sample| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(mix(seed, n as u64, sample as u64));
                let set = TaskSetConfig::new(n, 0.4 * n as f64, DagGenConfig::default())
                    .generate(&mut rng)
                    .expect("generation succeeds");
                [
                    global::analyze(&set, m, ConcurrencyModel::Full).is_schedulable(),
                    global::analyze(&set, m, ConcurrencyModel::Limited).is_schedulable(),
                    global::analyze(&set, m, ConcurrencyModel::LimitedExact).is_schedulable(),
                ]
            });
            FloorPoint {
                n,
                full: counts[0] as f64 / sets_per_point as f64,
                limited: counts[1] as f64 / sets_per_point as f64,
                limited_exact: counts[2] as f64 / sets_per_point as f64,
            }
        })
        .collect()
}

/// Acceptance ratios of Algorithm 1 under the three placement
/// heuristics at one pool size.
#[derive(Clone, Debug, PartialEq)]
pub struct HeuristicPoint {
    /// The swept pool size.
    pub m: usize,
    /// Worst-fit (the paper's heuristic).
    pub worst_fit: f64,
    /// First-fit.
    pub first_fit: f64,
    /// Best-fit.
    pub best_fit: f64,
}

/// Sweeps the pool size (the Figure 2(d) setup) and reports partitioned
/// acceptance for each Algorithm 1 tie-breaking heuristic.
#[must_use]
pub fn heuristic_ablation(sets_per_point: usize, seed: u64, threads: usize) -> Vec<HeuristicPoint> {
    [2usize, 3, 4, 6, 8, 12, 16]
        .into_iter()
        .map(|m| {
            let counts = parallel_count(sets_per_point, threads, |sample| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(mix(seed, m as u64, sample as u64));
                let set = TaskSetConfig::new(4, 1.0, DagGenConfig::default())
                    .generate(&mut rng)
                    .expect("generation succeeds");
                [
                    accepts(&set, m, &mut WorstFit),
                    accepts(&set, m, &mut FirstFit),
                    accepts(&set, m, &mut BestFit),
                ]
            });
            HeuristicPoint {
                m,
                worst_fit: counts[0] as f64 / sets_per_point as f64,
                first_fit: counts[1] as f64 / sets_per_point as f64,
                best_fit: counts[2] as f64 / sets_per_point as f64,
            }
        })
        .collect()
}

/// Partitions every task with Algorithm 1 under `heuristic` and runs the
/// partitioned RTA.
fn accepts<H: PlacementHeuristic>(set: &TaskSet, m: usize, heuristic: &mut H) -> bool {
    let mut mappings: Vec<NodeMapping> = Vec::with_capacity(set.len());
    for (_, task) in set.iter() {
        let ca = ConcurrencyAnalysis::new(task.dag());
        match algorithm1_with(&ca, m, heuristic) {
            Ok(mapping) => mappings.push(mapping),
            Err(_) => return false,
        }
    }
    partitioned::analyze(set, m, &mappings, BlockingAwareness::Oblivious).is_schedulable()
}

/// Evaluates `f` for `samples` indices across `threads` OS threads and
/// returns how many samples answered `true` per slot of the returned
/// array.
fn parallel_count<const K: usize>(
    samples: usize,
    threads: usize,
    f: impl Fn(usize) -> [bool; K] + Sync,
) -> [usize; K] {
    let counters: Vec<AtomicUsize> = (0..K).map(|_| AtomicUsize::new(0)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= samples {
                    return;
                }
                let results = f(i);
                for (k, &hit) in results.iter().enumerate() {
                    if hit {
                        counters[k].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let mut out = [0usize; K];
    for (o, c) in out.iter_mut().zip(&counters) {
        *o = c.load(Ordering::Relaxed);
    }
    out
}

fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z =
        seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_ablation_orders_models() {
        // Full >= LimitedExact >= Limited acceptance, pointwise.
        for p in concurrency_floor_ablation(24, 11, 4) {
            assert!(
                p.full >= p.limited_exact - 1e-12,
                "full {} < exact {} at n = {}",
                p.full,
                p.limited_exact,
                p.n
            );
            assert!(
                p.limited_exact >= p.limited - 1e-12,
                "exact {} < limited {} at n = {}",
                p.limited_exact,
                p.limited,
                p.n
            );
        }
    }

    #[test]
    fn heuristic_ablation_produces_ratios() {
        for p in heuristic_ablation(12, 3, 4) {
            for v in [p.worst_fit, p.first_fit, p.best_fit] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn parallel_count_counts() {
        let [evens, all] = parallel_count(100, 4, |i| [i % 2 == 0, true]);
        assert_eq!(evens, 50);
        assert_eq!(all, 100);
    }
}
