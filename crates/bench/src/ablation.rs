//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Concurrency floor**: the paper's `b̄`-based floor
//!    (`ConcurrencyModel::Limited`) versus the exact-antichain extension
//!    (`ConcurrencyModel::LimitedExact`) versus the oblivious baseline —
//!    how much schedulability the cheap bound gives away.
//! 2. **Algorithm 1 tie-breaking**: worst-fit (the paper's choice)
//!    versus first-fit and best-fit for the free placements at lines 11
//!    and 18.

use rand::SeedableRng;
use rtpool_core::analysis::global::{self, ConcurrencyModel};
use rtpool_core::analysis::partitioned::{self, BlockingAwareness};
use rtpool_core::partition::{
    algorithm1_with, BestFit, FirstFit, NodeMapping, PlacementHeuristic, WorstFit,
};
use rtpool_core::{ConcurrencyAnalysis, TaskSet};
use rtpool_gen::{DagGenConfig, TaskSetConfig};

use crate::sweep::SweepPool;

/// Acceptance ratios of the three global concurrency models at one
/// parameter point.
#[derive(Clone, Debug, PartialEq)]
pub struct FloorPoint {
    /// The swept task count.
    pub n: usize,
    /// Oblivious baseline acceptance.
    pub full: f64,
    /// `b̄`-based (paper) acceptance.
    pub limited: f64,
    /// Exact-antichain (extension) acceptance.
    pub limited_exact: f64,
}

/// Sweeps the task count (the Figure 2(e) setup) and reports the
/// acceptance of all three concurrency models. The whole
/// `(n × sample)` grid runs as one queue on the shared pool.
#[must_use]
pub fn concurrency_floor_ablation(
    pool: &SweepPool,
    sets_per_point: usize,
    seed: u64,
) -> Vec<FloorPoint> {
    let m = 8;
    let counts = sweep_counts(
        pool,
        "ablation:floor",
        8,
        sets_per_point,
        move |point, sample| {
            let n = 2 * (point + 1);
            let mut rng = rand::rngs::StdRng::seed_from_u64(mix(seed, n as u64, sample as u64));
            let set = TaskSetConfig::new(n, 0.4 * n as f64, DagGenConfig::default())
                .generate(&mut rng)
                .expect("generation succeeds");
            [
                global::analyze(&set, m, ConcurrencyModel::Full).is_schedulable(),
                global::analyze(&set, m, ConcurrencyModel::Limited).is_schedulable(),
                global::analyze(&set, m, ConcurrencyModel::LimitedExact).is_schedulable(),
            ]
        },
    );
    counts
        .into_iter()
        .enumerate()
        .map(|(point, c)| FloorPoint {
            n: 2 * (point + 1),
            full: c[0] as f64 / sets_per_point as f64,
            limited: c[1] as f64 / sets_per_point as f64,
            limited_exact: c[2] as f64 / sets_per_point as f64,
        })
        .collect()
}

/// Acceptance ratios of Algorithm 1 under the three placement
/// heuristics at one pool size.
#[derive(Clone, Debug, PartialEq)]
pub struct HeuristicPoint {
    /// The swept pool size.
    pub m: usize,
    /// Worst-fit (the paper's heuristic).
    pub worst_fit: f64,
    /// First-fit.
    pub first_fit: f64,
    /// Best-fit.
    pub best_fit: f64,
}

/// The pool sizes swept by [`heuristic_ablation`] (the Figure 2(d)
/// setup).
const HEURISTIC_POOL_SIZES: [usize; 7] = [2, 3, 4, 6, 8, 12, 16];

/// Sweeps the pool size (the Figure 2(d) setup) and reports partitioned
/// acceptance for each Algorithm 1 tie-breaking heuristic. The whole
/// `(m × sample)` grid runs as one queue on the shared pool.
#[must_use]
pub fn heuristic_ablation(
    pool: &SweepPool,
    sets_per_point: usize,
    seed: u64,
) -> Vec<HeuristicPoint> {
    let counts = sweep_counts(
        pool,
        "ablation:heuristic",
        HEURISTIC_POOL_SIZES.len(),
        sets_per_point,
        move |point, sample| {
            let m = HEURISTIC_POOL_SIZES[point];
            let mut rng = rand::rngs::StdRng::seed_from_u64(mix(seed, m as u64, sample as u64));
            let set = TaskSetConfig::new(4, 1.0, DagGenConfig::default())
                .generate(&mut rng)
                .expect("generation succeeds");
            [
                accepts(&set, m, &mut WorstFit),
                accepts(&set, m, &mut FirstFit),
                accepts(&set, m, &mut BestFit),
            ]
        },
    );
    counts
        .into_iter()
        .enumerate()
        .map(|(point, c)| HeuristicPoint {
            m: HEURISTIC_POOL_SIZES[point],
            worst_fit: c[0] as f64 / sets_per_point as f64,
            first_fit: c[1] as f64 / sets_per_point as f64,
            best_fit: c[2] as f64 / sets_per_point as f64,
        })
        .collect()
}

/// Partitions every task with Algorithm 1 under `heuristic` and runs the
/// partitioned RTA.
fn accepts<H: PlacementHeuristic>(set: &TaskSet, m: usize, heuristic: &mut H) -> bool {
    let mut mappings: Vec<NodeMapping> = Vec::with_capacity(set.len());
    for (_, task) in set.iter() {
        let ca = ConcurrencyAnalysis::new(task.dag());
        match algorithm1_with(&ca, m, heuristic) {
            Ok(mapping) => mappings.push(mapping),
            Err(_) => return false,
        }
    }
    partitioned::analyze(set, m, &mappings, BlockingAwareness::Oblivious).is_schedulable()
}

/// Evaluates `f(point, sample)` for the whole `points × samples` grid
/// as one flat queue on the shared pool and folds the boolean verdicts
/// into per-point hit counts.
fn sweep_counts<const K: usize>(
    pool: &SweepPool,
    label: &str,
    points: usize,
    samples: usize,
    f: impl Fn(usize, usize) -> [bool; K] + Send + Sync + 'static,
) -> Vec<[usize; K]> {
    let verdicts = pool.run(points * samples, label, move |i| {
        f(i / samples, i % samples)
    });
    let mut out = vec![[0usize; K]; points];
    for (i, verdict) in verdicts.iter().enumerate() {
        for (k, &hit) in verdict.iter().enumerate() {
            out[i / samples][k] += usize::from(hit);
        }
    }
    out
}

fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z =
        seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_ablation_orders_models() {
        // Full >= LimitedExact >= Limited acceptance, pointwise.
        let pool = SweepPool::new(4);
        for p in concurrency_floor_ablation(&pool, 24, 11) {
            assert!(
                p.full >= p.limited_exact - 1e-12,
                "full {} < exact {} at n = {}",
                p.full,
                p.limited_exact,
                p.n
            );
            assert!(
                p.limited_exact >= p.limited - 1e-12,
                "exact {} < limited {} at n = {}",
                p.limited_exact,
                p.limited,
                p.n
            );
        }
    }

    #[test]
    fn heuristic_ablation_produces_ratios() {
        let pool = SweepPool::new(4);
        for p in heuristic_ablation(&pool, 12, 3) {
            for v in [p.worst_fit, p.first_fit, p.best_fit] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn sweep_counts_counts() {
        let pool = SweepPool::new(4);
        let counts = sweep_counts(&pool, "t", 2, 50, |_, sample| [sample % 2 == 0, true]);
        assert_eq!(counts, vec![[25, 50], [25, 50]]);
    }

    #[test]
    fn ablation_independent_of_worker_count() {
        let serial = SweepPool::new(1);
        let wide = SweepPool::new(8);
        assert_eq!(
            concurrency_floor_ablation(&serial, 12, 5),
            concurrency_floor_ablation(&wide, 12, 5)
        );
        assert_eq!(
            heuristic_ablation(&serial, 8, 5),
            heuristic_ablation(&wide, 8, 5)
        );
    }
}
