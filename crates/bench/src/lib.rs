//! # rtpool-bench
//!
//! Experiment harness reproducing the evaluation of Casini, Biondi,
//! Buttazzo (DAC 2019): the six schedulability-ratio studies of
//! Figure 2, plus supporting machinery (parallel sample evaluation, text
//! and CSV output).
//!
//! Run all insets with the `fig2` binary:
//!
//! ```text
//! cargo run --release -p rtpool-bench --bin fig2 -- --inset all --sets 500
//! ```
//!
//! The per-inset generation parameters (the paper's figure captions are
//! not legible in the available scan) are documented on the [`fig2`]
//! module and in the workspace's DESIGN.md / EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig2;
pub mod pipeline;
pub mod serve;
pub mod spin_study;
pub mod sweep;
pub mod table;
pub mod tightness;
