//! The suspend-vs-spin head-to-head study behind `BENCH_spin.json`.
//!
//! Two halves, mirroring what the [`SyncBackend`] knob changes:
//!
//! * **Schedulability** — a fig2-style sweep over the global insets: the
//!   same seeded task sets as [`crate::fig2`] (identical RNG streams,
//!   identical discard rules), each analyzed under the suspend backend
//!   *and* re-analyzed with its backend flipped to spin. The suspend
//!   series is bit-identical to the `fig2` pipeline by construction —
//!   [`StudyReport::verdicts_match`] re-runs `fig2` and checks — while
//!   the spin series shows the schedulability cliff the busy-wait model
//!   pays at high blocking (low `l_max`): spinning forks inflate every
//!   interfering task's volume and harden the sizing floor to the delay
//!   count, so the spin ratio can only fall below the suspend ratio
//!   ([`StudyReport::spin_never_beats_suspend`] pins the dominance).
//!
//! * **Execution wall-clock** — the flip side: tiny fork-join jobs on
//!   the real pool under both backends and both engines. With short
//!   critical sections a spinning fork resumes its continuation with no
//!   wake-up latency, which is exactly where spin wins; the measured
//!   medians land in the artifact so the crossover is documented with
//!   numbers rather than folklore.

use std::time::{Duration, Instant};

use rand::SeedableRng;
use rtpool_core::SyncBackend;
use rtpool_exec::{Engine, PoolConfig, QueueDiscipline, ThreadPool};
use rtpool_gen::DagScratch;
use rtpool_graph::{Dag, DagBuilder};

use crate::fig2::{self, Fig2Params, Inset};
use crate::sweep::SweepPool;

/// Which backend series the study runs (`--backend suspend|spin|both`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendChoice {
    /// Only the suspend series (the `fig2` numbers, re-labeled).
    Suspend,
    /// Only the spin series.
    Spin,
    /// Both series plus the cross-backend gates (the default).
    Both,
}

impl BackendChoice {
    /// Parses the `--backend` operand.
    #[must_use]
    pub fn parse(s: &str) -> Option<BackendChoice> {
        match s.to_ascii_lowercase().as_str() {
            "suspend" => Some(BackendChoice::Suspend),
            "spin" => Some(BackendChoice::Spin),
            "both" => Some(BackendChoice::Both),
            _ => None,
        }
    }

    /// `true` when the suspend series is part of the study.
    #[must_use]
    pub fn runs_suspend(self) -> bool {
        matches!(self, BackendChoice::Suspend | BackendChoice::Both)
    }

    /// `true` when the spin series is part of the study.
    #[must_use]
    pub fn runs_spin(self) -> bool {
        matches!(self, BackendChoice::Spin | BackendChoice::Both)
    }
}

/// One x-point of the head-to-head sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct BackendPoint {
    /// The swept parameter's value.
    pub x: i64,
    /// Proposed-test schedulability ratio under the suspend backend
    /// (exactly `fig2`'s `proposed`).
    pub suspend: f64,
    /// The same ratio with every set's backend flipped to spin.
    pub spin: f64,
    /// Backend-oblivious baseline ratio (identical under both backends).
    pub baseline: f64,
    /// Sets evaluated / skipped / errored, as in [`fig2::SeriesPoint`].
    pub samples: usize,
    /// Samples the discard/window budget dropped.
    pub skipped: usize,
    /// Samples dropped by a generation error.
    pub errors: usize,
    /// Samples where spin accepted a set suspend rejected — must stay 0
    /// (spin analysis only adds interference and hardens the floor).
    pub dominance_violations: usize,
}

/// The schedulability half of the study.
#[derive(Clone, Debug)]
pub struct StudyReport {
    /// Per-inset series, in request order.
    pub series: Vec<(Inset, Vec<BackendPoint>)>,
    /// `true` when the suspend side reproduced the `fig2` pipeline
    /// bit-identically (always `true` when only spin was requested —
    /// there is nothing to compare).
    pub verdicts_match: bool,
}

impl StudyReport {
    /// `true` when no sample anywhere was schedulable under spin but not
    /// under suspend.
    #[must_use]
    pub fn spin_never_beats_suspend(&self) -> bool {
        self.series
            .iter()
            .flat_map(|(_, points)| points)
            .all(|p| p.dominance_violations == 0)
    }
}

/// Outcome of one `(inset, x, sample)` cell under both backends.
enum CellOutcome {
    Evaluated {
        suspend: bool,
        spin: bool,
        baseline: bool,
    },
    Skipped,
    Error,
}

/// Runs the head-to-head sweep over the given (global) insets.
///
/// Every cell regenerates its set through the exact `fig2` sample
/// driver — same derived seed, same scratch fast path, same discard
/// rule — so the suspend verdicts are the `fig2` verdicts, then flips
/// the set's backend in place and re-runs the same analysis battery.
///
/// # Panics
///
/// Panics when a partitioned inset (b/d/f) is requested: the
/// partitioned analyses are backend-oblivious, so a spin series over
/// them would be vacuously equal to suspend.
#[must_use]
pub fn run_study(
    pool: &SweepPool,
    insets: &[Inset],
    params: &Fig2Params,
    choice: BackendChoice,
) -> StudyReport {
    for &inset in insets {
        assert!(
            fig2::is_global(inset),
            "inset ({}) is partitioned: the spin study covers the global analyses only",
            inset.letter()
        );
    }
    let coords: Vec<(Inset, i64)> = insets
        .iter()
        .flat_map(|&inset| inset.x_values().into_iter().map(move |x| (inset, x)))
        .collect();
    let spp = params.sets_per_point;
    let seed = params.seed;
    let run_spin = choice.runs_spin();
    let cell_coords = coords.clone();
    let outcomes = pool.run(coords.len() * spp, "spin-study", move |i| {
        let (inset, x) = cell_coords[i / spp];
        let sample = i % spp;
        let mut rng = rand::rngs::StdRng::seed_from_u64(fig2::derive_seed(seed, inset, x, sample));
        let mut scratch = DagScratch::new();
        match fig2::sample_with_verdicts(inset, x, &mut rng, Some(&mut scratch)) {
            Ok(Some((set, m, suspend, baseline))) => {
                let spin = if run_spin {
                    let mut spin_set = set;
                    spin_set.set_backend(SyncBackend::Spin);
                    fig2::evaluate_set(inset, &spin_set, m).0
                } else {
                    false
                };
                CellOutcome::Evaluated {
                    suspend,
                    spin,
                    baseline,
                }
            }
            Ok(None) => CellOutcome::Skipped,
            Err(_) => CellOutcome::Error,
        }
    });

    let mut series: Vec<(Inset, Vec<BackendPoint>)> =
        insets.iter().map(|&inset| (inset, Vec::new())).collect();
    for (p, &(inset, x)) in coords.iter().enumerate() {
        let point = fold_cell(x, &outcomes[p * spp..(p + 1) * spp]);
        series
            .iter_mut()
            .find(|(i, _)| *i == inset)
            .expect("coordinate instigated by an entry of `insets`")
            .1
            .push(point);
    }

    // Bit-identity gate: the suspend half of the study must reproduce
    // the fig2 pipeline exactly (ratios, tallies, everything).
    let verdicts_match = if choice.runs_suspend() {
        fig2::run_insets(pool, insets, params)
            .iter()
            .zip(&series)
            .all(|((fi, fig2_points), (si, study_points))| {
                fi == si
                    && fig2_points.len() == study_points.len()
                    && fig2_points.iter().zip(study_points).all(|(f, s)| {
                        f.x == s.x
                            && f.proposed.to_bits() == s.suspend.to_bits()
                            && f.baseline.to_bits() == s.baseline.to_bits()
                            && f.samples == s.samples
                            && f.skipped == s.skipped
                            && f.errors == s.errors
                    })
            })
    } else {
        true
    };

    StudyReport {
        series,
        verdicts_match,
    }
}

fn fold_cell(x: i64, outcomes: &[CellOutcome]) -> BackendPoint {
    let mut evaluated = 0usize;
    let mut suspend_ok = 0usize;
    let mut spin_ok = 0usize;
    let mut baseline_ok = 0usize;
    let mut skipped = 0usize;
    let mut errors = 0usize;
    let mut dominance_violations = 0usize;
    for outcome in outcomes {
        match outcome {
            CellOutcome::Evaluated {
                suspend,
                spin,
                baseline,
            } => {
                evaluated += 1;
                suspend_ok += usize::from(*suspend);
                spin_ok += usize::from(*spin);
                baseline_ok += usize::from(*baseline);
                dominance_violations += usize::from(*spin && !*suspend);
            }
            CellOutcome::Skipped => skipped += 1,
            CellOutcome::Error => errors += 1,
        }
    }
    let ratio = |count: usize| {
        if evaluated == 0 {
            0.0
        } else {
            count as f64 / evaluated as f64
        }
    };
    BackendPoint {
        x,
        suspend: ratio(suspend_ok),
        spin: ratio(spin_ok),
        baseline: ratio(baseline_ok),
        samples: evaluated,
        skipped,
        errors,
        dominance_violations,
    }
}

/// One execution-side scenario: a fork-join job timed on the real pool
/// under both backends.
#[derive(Clone, Debug)]
pub struct ExecScenario {
    /// Scenario name (artifact key).
    pub name: &'static str,
    /// Engine label (`v1-condvar` / `v2-lockfree`).
    pub engine: &'static str,
    /// Median wall-clock of one job under the suspend backend.
    pub suspend: Duration,
    /// Median wall-clock of one job under the spin backend.
    pub spin: Duration,
}

impl ExecScenario {
    /// `suspend / spin` — above 1.0 means spin won the scenario.
    #[must_use]
    pub fn spin_speedup(&self) -> f64 {
        let spin = self.spin.as_secs_f64();
        if spin <= 0.0 {
            0.0
        } else {
            self.suspend.as_secs_f64() / spin
        }
    }
}

/// The fork-join job of an execution scenario: one blocking fork, two
/// children of `child_wcet` units each, on three workers.
fn scenario_dag(child_wcet: u64) -> Dag {
    let mut b = DagBuilder::new();
    b.fork_join(1, &[child_wcet, child_wcet], 1, true)
        .expect("fork-join shape");
    b.build().expect("valid dag")
}

/// Times the median job wall-clock for one `(dag, engine, backend)`
/// combination: `reps` jobs on a persistent pool, one warm-up job
/// discarded.
fn median_job(dag: &Dag, engine: Engine, backend: SyncBackend, reps: usize) -> Duration {
    let config = PoolConfig::new(3, QueueDiscipline::GlobalFifo)
        .with_engine(engine)
        .with_backend(backend)
        .with_time_scale(Duration::from_micros(50));
    let mut pool = ThreadPool::new(config);
    pool.run(dag).expect("scenario job runs");
    let mut times: Vec<Duration> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            pool.run(dag).expect("scenario job runs");
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Runs the execution half of the study: short- and long-wait fork-join
/// jobs under both engines, each timed under both backends.
///
/// The short-wait scenario (`child_wcet = 1`) is where spin is expected
/// to win — the barrier opens almost immediately, so the suspend
/// backend's park/wake round trip dominates the wait itself. The
/// long-wait scenario (`child_wcet = 20`) shows the price evaporating:
/// the wait dwarfs the wake-up latency, and the spinning core's burned
/// cycles buy nothing.
#[must_use]
pub fn run_exec_study(reps: usize) -> Vec<ExecScenario> {
    let short = scenario_dag(1);
    let long = scenario_dag(20);
    let mut out = Vec::new();
    for engine in [Engine::V1Condvar, Engine::V2LockFree] {
        for (name, dag) in [
            ("short-critical-section", &short),
            ("long-critical-section", &long),
        ] {
            out.push(ExecScenario {
                name,
                engine: engine.as_str(),
                suspend: median_job(dag, engine, SyncBackend::Suspend, reps),
                spin: median_job(dag, engine, SyncBackend::Spin, reps),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Fig2Params {
        Fig2Params {
            sets_per_point: 10,
            seed: 3,
            threads: 4,
        }
    }

    #[test]
    fn backend_choice_parses() {
        assert_eq!(BackendChoice::parse("both"), Some(BackendChoice::Both));
        assert_eq!(BackendChoice::parse("SPIN"), Some(BackendChoice::Spin));
        assert_eq!(
            BackendChoice::parse("suspend"),
            Some(BackendChoice::Suspend)
        );
        assert_eq!(BackendChoice::parse("futex"), None);
        assert!(BackendChoice::Both.runs_suspend() && BackendChoice::Both.runs_spin());
        assert!(!BackendChoice::Spin.runs_suspend());
        assert!(!BackendChoice::Suspend.runs_spin());
    }

    #[test]
    fn study_suspend_side_is_bit_identical_to_fig2() {
        let pool = SweepPool::new(4);
        let report = run_study(&pool, &[Inset::C], &tiny_params(), BackendChoice::Both);
        assert!(report.verdicts_match);
        assert!(report.spin_never_beats_suspend());
        let series = &report.series[0].1;
        assert_eq!(series.len(), Inset::C.x_values().len());
        for p in series {
            assert!(
                p.spin <= p.suspend + 1e-12,
                "spin beat suspend at x={}",
                p.x
            );
        }
    }

    #[test]
    fn study_is_deterministic() {
        let pool = SweepPool::new(4);
        let a = run_study(&pool, &[Inset::C], &tiny_params(), BackendChoice::Both);
        let b = run_study(&pool, &[Inset::C], &tiny_params(), BackendChoice::Both);
        assert_eq!(a.series, b.series);
    }

    #[test]
    #[should_panic(expected = "partitioned")]
    fn partitioned_insets_are_rejected() {
        let pool = SweepPool::new(2);
        let _ = run_study(&pool, &[Inset::B], &tiny_params(), BackendChoice::Both);
    }

    #[test]
    fn exec_study_times_all_scenarios() {
        let scenarios = run_exec_study(3);
        assert_eq!(scenarios.len(), 4);
        for s in &scenarios {
            assert!(s.suspend > Duration::ZERO && s.spin > Duration::ZERO);
            assert!(s.spin_speedup() > 0.0);
        }
    }
}
