//! Shared partition-then-analyze plumbing for the experiment binaries.
//!
//! The `fig2`, `probe`, and `bench_summary` binaries all evaluate the
//! same schedulability battery (oblivious vs concurrency-aware, global
//! vs partitioned); the helpers here keep those call sites identical so
//! a pipeline change cannot silently skew one experiment but not
//! another.

use rtpool_core::analysis::global::{self, ConcurrencyModel};
use rtpool_core::analysis::partitioned::{self, PartitionStrategy};
use rtpool_core::analysis::SchedResult;
use rtpool_core::partition::NodeMapping;
use rtpool_core::TaskSet;

/// Partitions `set` onto `m` threads with `strategy` and runs the
/// partitioned RTA, returning the verdicts and the per-task mappings
/// (`None` for tasks the partitioner rejected).
#[must_use]
pub fn partition_and(
    set: &TaskSet,
    m: usize,
    strategy: PartitionStrategy,
) -> (SchedResult, Vec<Option<NodeMapping>>) {
    partitioned::partition_and_analyze(set, m, strategy)
}

/// Runs the concurrency-oblivious (`Full`) and concurrency-aware
/// (`Limited`) global RTAs as one batched pass, sharing the per-task
/// base parameters (volume, critical path, deadline) between the two
/// models. Returns `(full, limited)`.
#[must_use]
pub fn global_full_and_limited(set: &TaskSet, m: usize) -> (SchedResult, SchedResult) {
    let mut results =
        global::analyze_many(set, m, &[ConcurrencyModel::Full, ConcurrencyModel::Limited]);
    let limited = results.pop().expect("two models in, two results out");
    let full = results.pop().expect("two models in, two results out");
    (full, limited)
}

/// The full Figure 2 verdict battery for one generated set: returns
/// `(proposed, baseline)` schedulability under the inset's scheduling
/// family (`global = true` for insets a/c/e).
#[must_use]
pub fn battery(set: &TaskSet, m: usize, global: bool) -> (bool, bool) {
    if global {
        let (full, limited) = global_full_and_limited(set, m);
        (limited.is_schedulable(), full.is_schedulable())
    } else {
        let base = partition_and(set, m, PartitionStrategy::WorstFit)
            .0
            .is_schedulable();
        let prop = partition_and(set, m, PartitionStrategy::Algorithm1)
            .0
            .is_schedulable();
        (prop, base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rtpool_gen::{DagGenConfig, TaskSetConfig};

    fn sample_set(seed: u64) -> TaskSet {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        TaskSetConfig::new(4, 2.0, DagGenConfig::default())
            .generate(&mut rng)
            .unwrap()
    }

    #[test]
    fn batched_global_pass_matches_single_model_calls() {
        for seed in 0..4 {
            let set = sample_set(seed);
            let (full, limited) = global_full_and_limited(&set, 8);
            assert_eq!(full, global::analyze(&set, 8, ConcurrencyModel::Full));
            assert_eq!(limited, global::analyze(&set, 8, ConcurrencyModel::Limited));
        }
    }

    #[test]
    fn battery_agrees_with_direct_calls() {
        let set = sample_set(7);
        let (prop_g, base_g) = battery(&set, 8, true);
        assert_eq!(
            prop_g,
            global::analyze(&set, 8, ConcurrencyModel::Limited).is_schedulable()
        );
        assert_eq!(
            base_g,
            global::analyze(&set, 8, ConcurrencyModel::Full).is_schedulable()
        );
        let (prop_p, base_p) = battery(&set, 8, false);
        assert_eq!(
            prop_p,
            partitioned::partition_and_analyze(&set, 8, PartitionStrategy::Algorithm1)
                .0
                .is_schedulable()
        );
        assert_eq!(
            base_p,
            partitioned::partition_and_analyze(&set, 8, PartitionStrategy::WorstFit)
                .0
                .is_schedulable()
        );
    }
}
