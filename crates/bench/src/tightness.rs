//! Bound-tightness study: how far above the *observed* worst response
//! time the analytic bounds sit, measured by simulating accepted task
//! sets with synchronous periodic releases (the presumed critical
//! instant).
//!
//! This quantifies the price of each analysis' pessimism — information
//! the paper's schedulability-ratio plots can only show indirectly.

use rand::SeedableRng;
use rtpool_core::analysis::global::{self, ConcurrencyModel};
use rtpool_core::analysis::partitioned::{self, PartitionStrategy};
use rtpool_core::TaskId;
use rtpool_gen::{DagGenConfig, TaskSetConfig};
use rtpool_sim::{SchedulingPolicy, SimConfig};

use crate::sweep::SweepPool;

/// Tightness statistics for one analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct Tightness {
    /// Analysis name.
    pub label: &'static str,
    /// Task sets that the analysis accepted (and were thus simulated).
    pub accepted: usize,
    /// Mean of `bound / observed` over all tasks of accepted sets
    /// (1.0 = exact; above 1 = pessimism).
    pub mean_ratio: f64,
    /// Largest observed `bound / observed`.
    pub max_ratio: f64,
    /// Tasks whose *simulated* response exceeded the analytic bound.
    /// Always 0 for the sound analyses; strictly positive occurrences
    /// for the oblivious Melani baseline on blocking tasks are the
    /// paper's core unsafety claim, demonstrated empirically.
    pub violations: usize,
}

/// Labels of the three studied analyses, in evaluation order.
const STUDY_LABELS: [&str; 3] = [
    "global full (Melani)",
    "global limited (paper)",
    "partitioned Algorithm 1",
];

/// Runs the study: `samples` random task sets (n tasks, utilization `u`,
/// `m` cores); for each analysis, accepted sets are simulated for three
/// hyperperiod-ish windows and per-task `bound/observed` ratios
/// aggregated. The whole `(analysis × sample)` grid runs as one queue
/// on the shared pool; aggregation uses the same `1e6` fixed-point
/// arithmetic as ever (sample order cannot perturb the sums).
#[must_use]
pub fn measure(
    pool: &SweepPool,
    samples: usize,
    m: usize,
    n: usize,
    u: f64,
    seed: u64,
) -> Vec<Tightness> {
    let ratios_per_cell = pool.run(STUDY_LABELS.len() * samples, "tightness", move |i| {
        let study = match i / samples {
            0 => Study::Global(ConcurrencyModel::Full),
            1 => Study::Global(ConcurrencyModel::Limited),
            _ => Study::Partitioned,
        };
        let sample = i % samples;
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            seed ^ (sample as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let set = TaskSetConfig::new(n, u, DagGenConfig::default())
            .generate(&mut rng)
            .expect("generation succeeds");
        study.evaluate(&set, m)
    });

    STUDY_LABELS
        .iter()
        .enumerate()
        .map(|(s, &label)| {
            let mut accepted = 0usize;
            let mut count = 0usize;
            let mut sum_scaled = 0u64;
            let mut max_scaled = 0u64;
            let mut violations = 0usize;
            for ratios in ratios_per_cell[s * samples..(s + 1) * samples]
                .iter()
                .flatten()
            {
                accepted += 1;
                for &r in ratios {
                    if r < 1.0 {
                        violations += 1;
                    }
                    let scaled = (r * 1e6) as u64;
                    count += 1;
                    sum_scaled += scaled;
                    max_scaled = max_scaled.max(scaled);
                }
            }
            Tightness {
                label,
                accepted,
                mean_ratio: sum_scaled as f64 / 1e6 / count.max(1) as f64,
                max_ratio: max_scaled as f64 / 1e6,
                violations,
            }
        })
        .collect()
}

enum Study {
    Global(ConcurrencyModel),
    Partitioned,
}

impl Study {
    /// Returns per-task `bound / observed` ratios when the analysis
    /// accepts the set, `None` otherwise.
    fn evaluate(&self, set: &rtpool_core::TaskSet, m: usize) -> Option<Vec<f64>> {
        let horizon = set.iter().map(|(_, t)| t.period()).max()? * 3;
        let (result, config) = match self {
            Study::Global(model) => {
                let r = global::analyze(set, m, *model);
                (r, SimConfig::periodic(SchedulingPolicy::Global, m, horizon))
            }
            Study::Partitioned => {
                let (r, mappings) =
                    partitioned::partition_and_analyze(set, m, PartitionStrategy::Algorithm1);
                if !r.is_schedulable() {
                    return None;
                }
                let maps: Vec<_> = mappings.into_iter().map(Option::unwrap).collect();
                (
                    r,
                    SimConfig::periodic(SchedulingPolicy::Partitioned, m, horizon)
                        .with_mappings(maps),
                )
            }
        };
        if !result.is_schedulable() {
            return None;
        }
        let out = config.run(set).ok()?;
        let mut ratios = Vec::new();
        for (i, _) in set.iter().enumerate() {
            let bound = result.verdict(TaskId(i)).response_time()? as f64;
            if out.task(i).stall.is_some() {
                // An accepted task deadlocked: the ultimate bound
                // violation (possible only for the oblivious baseline).
                ratios.push(0.0);
            } else if let Some(observed) = out.task(i).max_response {
                // Ratios below 1 are bound violations; the caller counts
                // them (they occur only for the unsafe oblivious
                // baseline — the paper's headline hazard).
                ratios.push(bound / observed as f64);
            }
        }
        Some(ratios)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sound_analyses_never_violate() {
        let pool = SweepPool::new(4);
        for t in measure(&pool, 30, 6, 3, 1.5, 7) {
            assert!(t.max_ratio >= 1.0 || t.accepted == 0);
            if t.label != "global full (Melani)" {
                assert_eq!(t.violations, 0, "{} violated its bound", t.label);
            }
        }
    }

    #[test]
    fn oblivious_baseline_can_violate_its_bound() {
        // Statistical: across enough samples, the unsafe baseline
        // under-estimates at least one blocking task's response.
        let pool = SweepPool::new(4);
        let results = measure(&pool, 120, 4, 2, 1.0, 99);
        let full = &results[0];
        assert!(
            full.violations > 0,
            "expected the oblivious baseline to violate at least once"
        );
    }

    #[test]
    fn tightness_independent_of_worker_count() {
        let serial = measure(&SweepPool::new(1), 20, 6, 3, 1.5, 7);
        let wide = measure(&SweepPool::new(8), 20, 6, 3, 1.5, 7);
        assert_eq!(serial, wide);
    }
}
