//! Bound-tightness study: how far above the *observed* worst response
//! time the analytic bounds sit, measured by simulating accepted task
//! sets with synchronous periodic releases (the presumed critical
//! instant).
//!
//! This quantifies the price of each analysis' pessimism — information
//! the paper's schedulability-ratio plots can only show indirectly.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use rand::SeedableRng;
use rtpool_core::analysis::global::{self, ConcurrencyModel};
use rtpool_core::analysis::partitioned::{self, PartitionStrategy};
use rtpool_core::TaskId;
use rtpool_gen::{DagGenConfig, TaskSetConfig};
use rtpool_sim::{SchedulingPolicy, SimConfig};

/// Tightness statistics for one analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct Tightness {
    /// Analysis name.
    pub label: &'static str,
    /// Task sets that the analysis accepted (and were thus simulated).
    pub accepted: usize,
    /// Mean of `bound / observed` over all tasks of accepted sets
    /// (1.0 = exact; above 1 = pessimism).
    pub mean_ratio: f64,
    /// Largest observed `bound / observed`.
    pub max_ratio: f64,
    /// Tasks whose *simulated* response exceeded the analytic bound.
    /// Always 0 for the sound analyses; strictly positive occurrences
    /// for the oblivious Melani baseline on blocking tasks are the
    /// paper's core unsafety claim, demonstrated empirically.
    pub violations: usize,
}

/// Runs the study: `samples` random task sets (n tasks, utilization `u`,
/// `m` cores); for each analysis, accepted sets are simulated for three
/// hyperperiod-ish windows and per-task `bound/observed` ratios
/// aggregated.
#[must_use]
pub fn measure(
    samples: usize,
    m: usize,
    n: usize,
    u: f64,
    seed: u64,
    threads: usize,
) -> Vec<Tightness> {
    let studies: [(&'static str, Study); 3] = [
        (
            "global full (Melani)",
            Study::Global(ConcurrencyModel::Full),
        ),
        (
            "global limited (paper)",
            Study::Global(ConcurrencyModel::Limited),
        ),
        ("partitioned Algorithm 1", Study::Partitioned),
    ];
    studies
        .into_iter()
        .map(|(label, study)| {
            // Fixed-point arithmetic on atomics: ratios scaled by 1e6.
            let accepted = AtomicUsize::new(0);
            let count = AtomicUsize::new(0);
            let sum_scaled = AtomicU64::new(0);
            let max_scaled = AtomicU64::new(0);
            let violations = AtomicUsize::new(0);
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads.max(1) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= samples {
                            return;
                        }
                        let mut rng = rand::rngs::StdRng::seed_from_u64(
                            seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                        );
                        let set = TaskSetConfig::new(n, u, DagGenConfig::default())
                            .generate(&mut rng)
                            .expect("generation succeeds");
                        let Some(ratios) = study.evaluate(&set, m) else {
                            continue;
                        };
                        accepted.fetch_add(1, Ordering::Relaxed);
                        for r in ratios {
                            if r < 1.0 {
                                violations.fetch_add(1, Ordering::Relaxed);
                            }
                            let scaled = (r * 1e6) as u64;
                            count.fetch_add(1, Ordering::Relaxed);
                            sum_scaled.fetch_add(scaled, Ordering::Relaxed);
                            max_scaled.fetch_max(scaled, Ordering::Relaxed);
                        }
                    });
                }
            });
            let count = count.load(Ordering::Relaxed).max(1);
            Tightness {
                label,
                accepted: accepted.load(Ordering::Relaxed),
                mean_ratio: sum_scaled.load(Ordering::Relaxed) as f64 / 1e6 / count as f64,
                max_ratio: max_scaled.load(Ordering::Relaxed) as f64 / 1e6,
                violations: violations.load(Ordering::Relaxed),
            }
        })
        .collect()
}

enum Study {
    Global(ConcurrencyModel),
    Partitioned,
}

impl Study {
    /// Returns per-task `bound / observed` ratios when the analysis
    /// accepts the set, `None` otherwise.
    fn evaluate(&self, set: &rtpool_core::TaskSet, m: usize) -> Option<Vec<f64>> {
        let horizon = set.iter().map(|(_, t)| t.period()).max()? * 3;
        let (result, config) = match self {
            Study::Global(model) => {
                let r = global::analyze(set, m, *model);
                (r, SimConfig::periodic(SchedulingPolicy::Global, m, horizon))
            }
            Study::Partitioned => {
                let (r, mappings) =
                    partitioned::partition_and_analyze(set, m, PartitionStrategy::Algorithm1);
                if !r.is_schedulable() {
                    return None;
                }
                let maps: Vec<_> = mappings.into_iter().map(Option::unwrap).collect();
                (
                    r,
                    SimConfig::periodic(SchedulingPolicy::Partitioned, m, horizon)
                        .with_mappings(maps),
                )
            }
        };
        if !result.is_schedulable() {
            return None;
        }
        let out = config.run(set).ok()?;
        let mut ratios = Vec::new();
        for (i, _) in set.iter().enumerate() {
            let bound = result.verdict(TaskId(i)).response_time()? as f64;
            if out.task(i).stall.is_some() {
                // An accepted task deadlocked: the ultimate bound
                // violation (possible only for the oblivious baseline).
                ratios.push(0.0);
            } else if let Some(observed) = out.task(i).max_response {
                // Ratios below 1 are bound violations; the caller counts
                // them (they occur only for the unsafe oblivious
                // baseline — the paper's headline hazard).
                ratios.push(bound / observed as f64);
            }
        }
        Some(ratios)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sound_analyses_never_violate() {
        for t in measure(30, 6, 3, 1.5, 7, 4) {
            assert!(t.max_ratio >= 1.0 || t.accepted == 0);
            if t.label != "global full (Melani)" {
                assert_eq!(t.violations, 0, "{} violated its bound", t.label);
            }
        }
    }

    #[test]
    fn oblivious_baseline_can_violate_its_bound() {
        // Statistical: across enough samples, the unsafe baseline
        // under-estimates at least one blocking task's response.
        let results = measure(120, 4, 2, 1.0, 99, 4);
        let full = &results[0];
        assert!(
            full.violations > 0,
            "expected the oblivious baseline to violate at least once"
        );
    }
}
