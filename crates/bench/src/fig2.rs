//! The six schedulability-ratio experiments of the paper's Figure 2.
//!
//! | Inset | Scheduling  | Varied | Fixed (defaults) | Discard rule |
//! |-------|-------------|--------|------------------|--------------|
//! | (a)   | global      | `l_max ∈ 1..=8` | `m = 8`, `n = 4`, `U = 4.0` | sets must be schedulable under the Melani baseline |
//! | (b)   | partitioned | `l_max ∈ 1..=8` | `m = 8`, `n = 4`, `U = 1.0` | sets must be schedulable under worst-fit + partitioned RTA |
//! | (c)   | global      | `m ∈ {2,3,4,6,8,12,16}` | `n = 4`, `U = 2.0` | none |
//! | (d)   | partitioned | `m` (same values) | `n = 4`, `U = 1.0` | none |
//! | (e)   | global      | `n ∈ {2,4,…,16}` | `m = 8`, `U = 0.4·n` | none |
//! | (f)   | partitioned | `n` (same values) | `m = 8`, `U = 0.15·n` | none |
//!
//! For (a)/(b) the generator enforces the available-concurrency window
//! `l̄(τᵢ) ∈ [max(1, l_max − 1), l_max]` on every task, as the paper
//! prescribes; the blocking-promotion probability is resampled per
//! attempt so every window is reachable (the paper's exact enforcement
//! mechanism is unspecified). Discarded sets are regenerated; samples
//! whose attempt budget runs out are counted separately and excluded
//! from the ratio.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::{Rng, SeedableRng};
use rtpool_core::TaskSet;
use rtpool_gen::{BlockingPolicy, ConcurrencyWindow, DagGenConfig, GenError, TaskSetConfig};

use crate::pipeline;

/// Which Figure 2 inset to reproduce.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inset {
    /// (a): global scheduling, `l_max` varied.
    A,
    /// (b): partitioned scheduling, `l_max` varied.
    B,
    /// (c): global scheduling, `m` varied.
    C,
    /// (d): partitioned scheduling, `m` varied.
    D,
    /// (e): global scheduling, `n` varied.
    E,
    /// (f): partitioned scheduling, `n` varied.
    F,
}

impl Inset {
    /// All insets in paper order.
    pub const ALL: [Inset; 6] = [Inset::A, Inset::B, Inset::C, Inset::D, Inset::E, Inset::F];

    /// Parses `"a"`–`"f"` (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Inset> {
        match s.to_ascii_lowercase().as_str() {
            "a" => Some(Inset::A),
            "b" => Some(Inset::B),
            "c" => Some(Inset::C),
            "d" => Some(Inset::D),
            "e" => Some(Inset::E),
            "f" => Some(Inset::F),
            _ => None,
        }
    }

    /// Lower-case letter of the inset.
    #[must_use]
    pub fn letter(self) -> &'static str {
        match self {
            Inset::A => "a",
            Inset::B => "b",
            Inset::C => "c",
            Inset::D => "d",
            Inset::E => "e",
            Inset::F => "f",
        }
    }

    /// Human-readable description (matches the paper's captions in
    /// intent).
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Inset::A => {
                "global: schedulability vs l_max (m=8, n=4, U=4.0; baseline-schedulable sets)"
            }
            Inset::B => {
                "partitioned: schedulability vs l_max (m=8, n=4, U=1.0; baseline-schedulable sets)"
            }
            Inset::C => "global: schedulability vs m (n=4, U=2.0)",
            Inset::D => "partitioned: schedulability vs m (n=4, U=1.0)",
            Inset::E => "global: schedulability vs n (m=8, U=0.4n)",
            Inset::F => "partitioned: schedulability vs n (m=8, U=0.15n)",
        }
    }

    /// Label of the swept parameter.
    #[must_use]
    pub fn x_label(self) -> &'static str {
        match self {
            Inset::A | Inset::B => "l_max",
            Inset::C | Inset::D => "m",
            Inset::E | Inset::F => "n",
        }
    }

    /// The swept x values.
    #[must_use]
    pub fn x_values(self) -> Vec<i64> {
        match self {
            Inset::A | Inset::B => (1..=8).collect(),
            Inset::C | Inset::D => vec![2, 3, 4, 6, 8, 12, 16],
            Inset::E | Inset::F => (1..=8).map(|k| 2 * k).collect(),
        }
    }

    /// Name of the proposed (concurrency-aware) test in this inset.
    #[must_use]
    pub fn proposed_label(self) -> &'static str {
        match self {
            Inset::A | Inset::C | Inset::E => "limited-concurrency RTA (Sec. 4.1)",
            Inset::B | Inset::D | Inset::F => "Algorithm 1 + partitioned RTA",
        }
    }

    /// Name of the baseline test in this inset.
    #[must_use]
    pub fn baseline_label(self) -> &'static str {
        match self {
            Inset::A | Inset::C | Inset::E => "Melani et al. [14] (oblivious)",
            Inset::B | Inset::D | Inset::F => "worst-fit + partitioned RTA (oblivious)",
        }
    }
}

/// Harness parameters.
#[derive(Clone, Copy, Debug)]
pub struct Fig2Params {
    /// Task sets per x value (paper: 500).
    pub sets_per_point: usize,
    /// Base seed; every `(inset, x, sample)` derives its own stream.
    pub seed: u64,
    /// OS threads used to evaluate samples in parallel.
    pub threads: usize,
}

impl Default for Fig2Params {
    fn default() -> Self {
        Fig2Params {
            sets_per_point: 500,
            seed: 0x5eed_f00d,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

/// One point of a schedulability-ratio series.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesPoint {
    /// The swept parameter's value.
    pub x: i64,
    /// Fraction of evaluated sets schedulable under the proposed test.
    pub proposed: f64,
    /// Fraction schedulable under the baseline test (1.0 by construction
    /// in insets (a)/(b)).
    pub baseline: f64,
    /// Sets actually evaluated at this point.
    pub samples: usize,
    /// Samples skipped because generation/discard budgets ran out.
    pub skipped: usize,
}

const N_TASKS_SMALL: usize = 4;
const M_DEFAULT: usize = 8;
/// Attempts to find a baseline-schedulable, window-satisfying set for one
/// sample of insets (a)/(b).
const DISCARD_BUDGET: usize = 400;
/// Inner attempts of the concurrency-window rejection sampler per outer
/// attempt (the blocking probability is resampled between outer
/// attempts).
const WINDOW_BUDGET: usize = 60;

/// Runs one inset and returns its series.
#[must_use]
pub fn run_inset(inset: Inset, params: &Fig2Params) -> Vec<SeriesPoint> {
    inset
        .x_values()
        .into_iter()
        .map(|x| run_point(inset, x, params))
        .collect()
}

fn run_point(inset: Inset, x: i64, params: &Fig2Params) -> SeriesPoint {
    let proposed_ok = AtomicUsize::new(0);
    let baseline_ok = AtomicUsize::new(0);
    let evaluated = AtomicUsize::new(0);
    let skipped = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..params.threads.max(1) {
            scope.spawn(|| loop {
                let sample = next.fetch_add(1, Ordering::Relaxed);
                if sample >= params.sets_per_point {
                    return;
                }
                let seed = derive_seed(params.seed, inset, x, sample);
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                match evaluate_sample(inset, x, &mut rng) {
                    Ok(Some((prop, base))) => {
                        evaluated.fetch_add(1, Ordering::Relaxed);
                        if prop {
                            proposed_ok.fetch_add(1, Ordering::Relaxed);
                        }
                        if base {
                            baseline_ok.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Ok(None) => {
                        skipped.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        skipped.fetch_add(1, Ordering::Relaxed);
                        errors.lock().expect("not poisoned").push(e);
                    }
                }
            });
        }
    });

    let evaluated = evaluated.load(Ordering::Relaxed);
    let ratio = |count: usize| {
        if evaluated == 0 {
            0.0
        } else {
            count as f64 / evaluated as f64
        }
    };
    SeriesPoint {
        x,
        proposed: ratio(proposed_ok.load(Ordering::Relaxed)),
        baseline: ratio(baseline_ok.load(Ordering::Relaxed)),
        samples: evaluated,
        skipped: skipped.load(Ordering::Relaxed),
    }
}

fn derive_seed(base: u64, inset: Inset, x: i64, sample: usize) -> u64 {
    // SplitMix-style mixing of the coordinates.
    let mut z = base
        ^ (inset.letter().as_bytes()[0] as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (x as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ (sample as u64).wrapping_mul(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Evaluates one sample; `Ok(None)` means the discard/window budget ran
/// out.
fn evaluate_sample(
    inset: Inset,
    x: i64,
    rng: &mut rand::rngs::StdRng,
) -> Result<Option<(bool, bool)>, String> {
    match inset {
        Inset::A | Inset::B => {
            // The partitioned RTA adaptation is substantially more
            // pessimistic than the global one (see DESIGN.md), so inset
            // (b) uses a lighter load to keep the discard rule (baseline
            // must accept the set) satisfiable.
            let m = M_DEFAULT;
            let u = if inset == Inset::A {
                0.5 * m as f64
            } else {
                1.0
            };
            let window = ConcurrencyWindow {
                m,
                l_min: (x - 1).max(1),
                l_max: x,
                max_attempts: WINDOW_BUDGET,
            };
            for _ in 0..DISCARD_BUDGET {
                // Resample the blocking-promotion probability so every
                // window is reachable.
                let p: f64 = rng.gen();
                let dag_cfg = DagGenConfig {
                    blocking: BlockingPolicy::Fixed(p),
                    ..DagGenConfig::default()
                };
                let cfg =
                    TaskSetConfig::new(N_TASKS_SMALL, u, dag_cfg).with_concurrency_window(window);
                let set = match cfg.generate(rng) {
                    Ok(set) => set,
                    Err(GenError::WindowUnsatisfiable { .. }) => continue,
                    Err(e) => return Err(e.to_string()),
                };
                // One batched battery per generated set: the discard rule
                // (the concurrency-oblivious state of the art must accept
                // the set) and the measured proposed test share the
                // per-task base parameters and the memoized derived
                // artifacts of each DAG.
                let (prop, base) = evaluate_set(inset, &set, m);
                if !base {
                    continue;
                }
                return Ok(Some((prop, true)));
            }
            Ok(None)
        }
        Inset::C | Inset::D => {
            // Fixed total utilization while m grows: the penalty of
            // reduced concurrency should vanish for m ≥ 8 (the paper's
            // reading of insets (c)/(d)).
            let m = usize::try_from(x).expect("positive m");
            let u = if inset == Inset::C { 2.0 } else { 1.0 };
            let cfg = TaskSetConfig::new(N_TASKS_SMALL, u, DagGenConfig::default());
            let set = cfg.generate(rng).map_err(|e| e.to_string())?;
            Ok(Some(evaluate_set(inset, &set, m)))
        }
        Inset::E | Inset::F => {
            // Constant per-task utilization (0.4 each): adding tasks adds
            // load *and* raises the chance that some task has a
            // largely-reduced available concurrency, so schedulability
            // decreases with n — with the concurrency-aware tests
            // declining faster (the paper's reading of insets (e)/(f)).
            let m = M_DEFAULT;
            let n = usize::try_from(x).expect("positive n");
            let per_task = if inset == Inset::E { 0.4 } else { 0.15 };
            let cfg = TaskSetConfig::new(n, per_task * n as f64, DagGenConfig::default());
            let set = cfg.generate(rng).map_err(|e| e.to_string())?;
            Ok(Some(evaluate_set(inset, &set, m)))
        }
    }
}

fn is_global(inset: Inset) -> bool {
    matches!(inset, Inset::A | Inset::C | Inset::E)
}

/// Evaluates `(proposed, baseline)` schedulability for one set through
/// the shared [`pipeline::battery`], so every inset's analysis pass goes
/// through the same (cached) call path.
fn evaluate_set(inset: Inset, set: &TaskSet, m: usize) -> (bool, bool) {
    pipeline::battery(set, m, is_global(inset))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Fig2Params {
        Fig2Params {
            sets_per_point: 12,
            seed: 1,
            threads: 4,
        }
    }

    #[test]
    fn inset_parsing_and_metadata() {
        for inset in Inset::ALL {
            assert_eq!(Inset::parse(inset.letter()), Some(inset));
            assert!(!inset.description().is_empty());
            assert!(!inset.x_values().is_empty());
            assert!(!inset.proposed_label().is_empty());
            assert!(!inset.baseline_label().is_empty());
        }
        assert_eq!(Inset::parse("z"), None);
        assert_eq!(Inset::parse("A"), Some(Inset::A));
    }

    #[test]
    fn seeds_are_distinct_per_coordinate() {
        let a = derive_seed(7, Inset::A, 3, 0);
        let b = derive_seed(7, Inset::A, 3, 1);
        let c = derive_seed(7, Inset::A, 4, 0);
        let d = derive_seed(7, Inset::B, 3, 0);
        assert!(a != b && a != c && a != d && b != c);
    }

    #[test]
    fn inset_c_point_produces_ratios() {
        // m = 8 keeps generation cheap and acceptance high.
        let point = run_point(Inset::C, 8, &tiny_params());
        assert_eq!(point.samples + point.skipped, 12);
        assert!(point.samples > 0);
        assert!((0.0..=1.0).contains(&point.proposed));
        assert!((0.0..=1.0).contains(&point.baseline));
        // The proposed (concurrency-aware) test is never more accepting.
        assert!(point.proposed <= point.baseline + 1e-12);
    }

    #[test]
    fn inset_a_baseline_is_one_by_construction() {
        let point = run_point(Inset::A, 6, &tiny_params());
        if point.samples > 0 {
            assert!((point.baseline - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn determinism() {
        let p1 = run_point(Inset::E, 4, &tiny_params());
        let p2 = run_point(Inset::E, 4, &tiny_params());
        assert_eq!(p1, p2);
    }

    #[test]
    fn results_independent_of_thread_count() {
        // Every (inset, x, sample) coordinate derives its own RNG stream
        // and the per-point tallies are order-free counters, so the
        // worker count must not leak into the series.
        for inset in [Inset::C, Inset::E] {
            let serial = run_point(
                inset,
                4,
                &Fig2Params {
                    threads: 1,
                    ..tiny_params()
                },
            );
            let parallel = run_point(
                inset,
                4,
                &Fig2Params {
                    threads: 4,
                    ..tiny_params()
                },
            );
            assert_eq!(serial, parallel, "inset {} diverged", inset.letter());
        }
    }
}
