//! The six schedulability-ratio experiments of the paper's Figure 2.
//!
//! | Inset | Scheduling  | Varied | Fixed (defaults) | Discard rule |
//! |-------|-------------|--------|------------------|--------------|
//! | (a)   | global      | `l_max ∈ 1..=8` | `m = 8`, `n = 4`, `U = 4.0` | sets must be schedulable under the Melani baseline |
//! | (b)   | partitioned | `l_max ∈ 1..=8` | `m = 8`, `n = 4`, `U = 1.0` | sets must be schedulable under worst-fit + partitioned RTA |
//! | (c)   | global      | `m ∈ {2,3,4,6,8,12,16}` | `n = 4`, `U = 2.0` | none |
//! | (d)   | partitioned | `m` (same values) | `n = 4`, `U = 1.0` | none |
//! | (e)   | global      | `n ∈ {2,4,…,16}` | `m = 8`, `U = 0.4·n` | none |
//! | (f)   | partitioned | `n` (same values) | `m = 8`, `U = 0.15·n` | none |
//!
//! For (a)/(b) the generator enforces the available-concurrency window
//! `l̄(τᵢ) ∈ [max(1, l_max − 1), l_max]` on every task, as the paper
//! prescribes; the blocking-promotion probability is resampled per
//! attempt so every window is reachable (the paper's exact enforcement
//! mechanism is unspecified). Discarded sets are regenerated; samples
//! whose attempt budget runs out are counted separately and excluded
//! from the ratio.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::{Rng, SeedableRng};
use rtpool_core::TaskSet;
use rtpool_gen::{
    BlockingPolicy, ConcurrencyWindow, DagGenConfig, DagScratch, GenError, TaskSetConfig,
};

use crate::pipeline;
use crate::sweep::SweepPool;

/// Which Figure 2 inset to reproduce.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inset {
    /// (a): global scheduling, `l_max` varied.
    A,
    /// (b): partitioned scheduling, `l_max` varied.
    B,
    /// (c): global scheduling, `m` varied.
    C,
    /// (d): partitioned scheduling, `m` varied.
    D,
    /// (e): global scheduling, `n` varied.
    E,
    /// (f): partitioned scheduling, `n` varied.
    F,
}

impl Inset {
    /// All insets in paper order.
    pub const ALL: [Inset; 6] = [Inset::A, Inset::B, Inset::C, Inset::D, Inset::E, Inset::F];

    /// Parses `"a"`–`"f"` (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Inset> {
        match s.to_ascii_lowercase().as_str() {
            "a" => Some(Inset::A),
            "b" => Some(Inset::B),
            "c" => Some(Inset::C),
            "d" => Some(Inset::D),
            "e" => Some(Inset::E),
            "f" => Some(Inset::F),
            _ => None,
        }
    }

    /// Lower-case letter of the inset.
    #[must_use]
    pub fn letter(self) -> &'static str {
        match self {
            Inset::A => "a",
            Inset::B => "b",
            Inset::C => "c",
            Inset::D => "d",
            Inset::E => "e",
            Inset::F => "f",
        }
    }

    /// Human-readable description (matches the paper's captions in
    /// intent).
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Inset::A => {
                "global: schedulability vs l_max (m=8, n=4, U=4.0; baseline-schedulable sets)"
            }
            Inset::B => {
                "partitioned: schedulability vs l_max (m=8, n=4, U=1.0; baseline-schedulable sets)"
            }
            Inset::C => "global: schedulability vs m (n=4, U=2.0)",
            Inset::D => "partitioned: schedulability vs m (n=4, U=1.0)",
            Inset::E => "global: schedulability vs n (m=8, U=0.4n)",
            Inset::F => "partitioned: schedulability vs n (m=8, U=0.15n)",
        }
    }

    /// Label of the swept parameter.
    #[must_use]
    pub fn x_label(self) -> &'static str {
        match self {
            Inset::A | Inset::B => "l_max",
            Inset::C | Inset::D => "m",
            Inset::E | Inset::F => "n",
        }
    }

    /// The swept x values.
    #[must_use]
    pub fn x_values(self) -> Vec<i64> {
        match self {
            Inset::A | Inset::B => (1..=8).collect(),
            Inset::C | Inset::D => vec![2, 3, 4, 6, 8, 12, 16],
            Inset::E | Inset::F => (1..=8).map(|k| 2 * k).collect(),
        }
    }

    /// Name of the proposed (concurrency-aware) test in this inset.
    #[must_use]
    pub fn proposed_label(self) -> &'static str {
        match self {
            Inset::A | Inset::C | Inset::E => "limited-concurrency RTA (Sec. 4.1)",
            Inset::B | Inset::D | Inset::F => "Algorithm 1 + partitioned RTA",
        }
    }

    /// Name of the baseline test in this inset.
    #[must_use]
    pub fn baseline_label(self) -> &'static str {
        match self {
            Inset::A | Inset::C | Inset::E => "Melani et al. [14] (oblivious)",
            Inset::B | Inset::D | Inset::F => "worst-fit + partitioned RTA (oblivious)",
        }
    }
}

/// Harness parameters.
#[derive(Clone, Copy, Debug)]
pub struct Fig2Params {
    /// Task sets per x value (paper: 500).
    pub sets_per_point: usize,
    /// Base seed; every `(inset, x, sample)` derives its own stream.
    pub seed: u64,
    /// OS threads used to evaluate samples in parallel.
    pub threads: usize,
}

impl Default for Fig2Params {
    fn default() -> Self {
        Fig2Params {
            sets_per_point: 500,
            seed: 0x5eed_f00d,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

/// One point of a schedulability-ratio series.
///
/// A point with `samples == 0` is *empty*: no sample survived the
/// discard/window budgets (or all errored). Its ratio fields are `0.0`
/// placeholders — never `NaN` — and carry no meaning; the table and CSV
/// renderers skip empty points instead of printing a `baseline = 0`
/// that would contradict the "baseline ≡ 1 by construction" invariant
/// of insets (a)/(b).
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesPoint {
    /// The swept parameter's value.
    pub x: i64,
    /// Fraction of evaluated sets schedulable under the proposed test.
    pub proposed: f64,
    /// Fraction schedulable under the baseline test (1.0 by construction
    /// in insets (a)/(b)).
    pub baseline: f64,
    /// Sets actually evaluated at this point.
    pub samples: usize,
    /// Samples skipped because generation/discard budgets ran out.
    pub skipped: usize,
    /// Samples dropped by a generation *error* (not a budget); the
    /// harness prints the first few error messages to stderr.
    pub errors: usize,
}

impl SeriesPoint {
    /// `true` when no sample was evaluated (see the type-level docs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }
}

const N_TASKS_SMALL: usize = 4;
const M_DEFAULT: usize = 8;
/// Attempts to find a baseline-schedulable, window-satisfying set for one
/// sample of insets (a)/(b).
const DISCARD_BUDGET: usize = 400;
/// Inner attempts of the concurrency-window rejection sampler per outer
/// attempt (the blocking probability is resampled between outer
/// attempts).
const WINDOW_BUDGET: usize = 60;

/// Outcome of one `(inset, x, sample)` sweep cell.
enum SampleOutcome {
    /// The sample survived the discard rule and was analyzed.
    Evaluated {
        /// Proposed (concurrency-aware) test verdict.
        proposed: bool,
        /// Baseline (oblivious) test verdict.
        baseline: bool,
    },
    /// The discard/window budget ran out — excluded from the ratio.
    Skipped,
    /// Generation failed outright.
    Error(String),
}

/// Runs every x value of every requested inset as **one** flat sweep
/// over the shared worker pool: no per-point spawn/join, no barrier
/// between points. Returns one series per inset, in `insets` order.
///
/// Determinism: each `(inset, x, sample)` coordinate derives its own
/// RNG stream ([`derive_seed`]) and lands in its own result slot, so
/// the series are bit-identical for any worker count.
#[must_use]
pub fn run_insets(
    pool: &SweepPool,
    insets: &[Inset],
    params: &Fig2Params,
) -> Vec<(Inset, Vec<SeriesPoint>)> {
    let coords: Vec<(Inset, i64)> = insets
        .iter()
        .flat_map(|&inset| inset.x_values().into_iter().map(move |x| (inset, x)))
        .collect();
    let points = run_points(pool, &coords, params);

    let mut by_inset: Vec<(Inset, Vec<SeriesPoint>)> =
        insets.iter().map(|&inset| (inset, Vec::new())).collect();
    for (&(inset, _), point) in coords.iter().zip(points) {
        by_inset
            .iter_mut()
            .find(|(i, _)| *i == inset)
            .expect("coordinate instigated by an entry of `insets`")
            .1
            .push(point);
    }
    by_inset
}

/// Runs one inset through the pool. Convenience wrapper over
/// [`run_insets`]; prefer the batched form when running several insets
/// so the whole grid forms a single work queue.
#[must_use]
pub fn run_inset(pool: &SweepPool, inset: Inset, params: &Fig2Params) -> Vec<SeriesPoint> {
    run_insets(pool, &[inset], params)
        .pop()
        .expect("one series per requested inset")
        .1
}

/// Runs a single point through the pool.
#[must_use]
pub fn run_point(pool: &SweepPool, inset: Inset, x: i64, params: &Fig2Params) -> SeriesPoint {
    run_points(pool, &[(inset, x)], params)
        .pop()
        .expect("one point per coordinate")
}

/// Shared driver: evaluates `sets_per_point` samples for every
/// coordinate as one chunked cell queue, then folds outcomes into
/// per-point tallies (printing the first few generation errors).
fn run_points(pool: &SweepPool, coords: &[(Inset, i64)], params: &Fig2Params) -> Vec<SeriesPoint> {
    let spp = params.sets_per_point;
    let seed = params.seed;
    let cell_coords = coords.to_vec();
    let outcomes = pool.run(coords.len() * spp, "fig2", move |i| {
        let (inset, x) = cell_coords[i / spp];
        let sample = i % spp;
        let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(seed, inset, x, sample));
        let mut scratch = DagScratch::new();
        match evaluate_sample(inset, x, &mut rng, Some(&mut scratch)) {
            Ok(Some((proposed, baseline))) => SampleOutcome::Evaluated { proposed, baseline },
            Ok(None) => SampleOutcome::Skipped,
            Err(e) => SampleOutcome::Error(e),
        }
    });

    let mut printed = 0usize;
    coords
        .iter()
        .enumerate()
        .map(|(p, &(inset, x))| {
            fold_point(inset, x, &outcomes[p * spp..(p + 1) * spp], &mut printed)
        })
        .collect()
}

/// Maximum generation-error messages echoed to stderr per run.
const MAX_PRINTED_ERRORS: usize = 5;

/// Folds one point's sample outcomes into a [`SeriesPoint`], surfacing
/// the first few error messages on stderr.
fn fold_point(
    inset: Inset,
    x: i64,
    outcomes: &[SampleOutcome],
    printed: &mut usize,
) -> SeriesPoint {
    let mut evaluated = 0usize;
    let mut proposed_ok = 0usize;
    let mut baseline_ok = 0usize;
    let mut skipped = 0usize;
    let mut errors = 0usize;
    for outcome in outcomes {
        match outcome {
            SampleOutcome::Evaluated { proposed, baseline } => {
                evaluated += 1;
                proposed_ok += usize::from(*proposed);
                baseline_ok += usize::from(*baseline);
            }
            SampleOutcome::Skipped => skipped += 1,
            SampleOutcome::Error(message) => {
                errors += 1;
                if *printed < MAX_PRINTED_ERRORS {
                    *printed += 1;
                    eprintln!(
                        "fig2: generation error at inset ({}), {} = {x}: {message}",
                        inset.letter(),
                        inset.x_label()
                    );
                }
            }
        }
    }
    // `evaluated == 0` yields an explicitly empty point (see the
    // `SeriesPoint` docs): 0.0 placeholders, never NaN, skipped by the
    // renderers.
    let ratio = |count: usize| {
        if evaluated == 0 {
            0.0
        } else {
            count as f64 / evaluated as f64
        }
    };
    SeriesPoint {
        x,
        proposed: ratio(proposed_ok),
        baseline: ratio(baseline_ok),
        samples: evaluated,
        skipped,
        errors,
    }
}

/// The pre-sweep-engine point runner: spawns and joins a scope of OS
/// threads for this single point and routes generation through the
/// full-build-per-attempt reference path
/// ([`TaskSetConfig::generate_reference`]). Bit-identical output to
/// [`run_point`]; kept as the before-side cost model of the
/// `bench_summary` generation kernel and as an oracle for the
/// series-identity gate. Not for production use.
#[must_use]
pub fn run_point_reference(inset: Inset, x: i64, params: &Fig2Params) -> SeriesPoint {
    let next = AtomicUsize::new(0);
    let outcomes: Vec<std::sync::OnceLock<SampleOutcome>> = (0..params.sets_per_point)
        .map(|_| std::sync::OnceLock::new())
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..params.threads.max(1) {
            scope.spawn(|| loop {
                let sample = next.fetch_add(1, Ordering::Relaxed);
                if sample >= params.sets_per_point {
                    return;
                }
                let seed = derive_seed(params.seed, inset, x, sample);
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let outcome = match evaluate_sample(inset, x, &mut rng, None) {
                    Ok(Some((proposed, baseline))) => {
                        SampleOutcome::Evaluated { proposed, baseline }
                    }
                    Ok(None) => SampleOutcome::Skipped,
                    Err(e) => SampleOutcome::Error(e),
                };
                outcomes[sample]
                    .set(outcome)
                    .unwrap_or_else(|_| unreachable!("each sample index claimed once"));
            });
        }
    });

    let outcomes: Vec<SampleOutcome> = outcomes
        .into_iter()
        .map(|slot| slot.into_inner().expect("all samples executed"))
        .collect();
    let mut printed = MAX_PRINTED_ERRORS; // reference path stays silent
    fold_point(inset, x, &outcomes, &mut printed)
}

pub(crate) fn derive_seed(base: u64, inset: Inset, x: i64, sample: usize) -> u64 {
    // SplitMix-style mixing of the coordinates.
    let mut z = base
        ^ (inset.letter().as_bytes()[0] as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (x as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ (sample as u64).wrapping_mul(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Evaluates one sample; `Ok(None)` means the discard/window budget ran
/// out.
///
/// `scratch: Some(..)` routes generation through the scratch-buffer
/// fast path (buffers reused across all rejection attempts of the
/// sample); `None` uses the full-build-per-attempt reference path. Both
/// consume the RNG stream identically and return identical verdicts —
/// pinned by proptests in `rtpool-gen` and the `series_match` gate of
/// `bench_summary`.
fn evaluate_sample(
    inset: Inset,
    x: i64,
    rng: &mut rand::rngs::StdRng,
    scratch: Option<&mut DagScratch>,
) -> Result<Option<(bool, bool)>, String> {
    Ok(sample_with_verdicts(inset, x, rng, scratch)?.map(|(_, _, prop, base)| (prop, base)))
}

/// Regenerates the task set that sample 0 of the `(inset, x)` sweep cell
/// evaluates, together with its core count `m` — the replay hook behind
/// `fig2 --trace` and the `rtpool-trace` CLI, which run the sample under
/// the simulator or the native pool to produce an event trace.
///
/// # Errors
///
/// Returns the generation error, or a budget message when no set
/// survived the inset's discard/window budgets.
pub fn sample_for_trace(inset: Inset, x: i64, seed: u64) -> Result<(TaskSet, usize), String> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(seed, inset, x, 0));
    let mut scratch = DagScratch::new();
    match sample_with_verdicts(inset, x, &mut rng, Some(&mut scratch))? {
        Some((set, m, _, _)) => Ok((set, m)),
        None => Err(format!(
            "no sample survived the discard budget at inset ({}), {} = {x}",
            inset.letter(),
            inset.x_label()
        )),
    }
}

/// Shared sample driver: generates (with the inset's discard rule) and
/// evaluates one sample, returning the surviving set, its core count,
/// and the `(proposed, baseline)` verdicts.
pub(crate) fn sample_with_verdicts(
    inset: Inset,
    x: i64,
    rng: &mut rand::rngs::StdRng,
    mut scratch: Option<&mut DagScratch>,
) -> Result<Option<(TaskSet, usize, bool, bool)>, String> {
    let mut generate = |cfg: &TaskSetConfig, rng: &mut rand::rngs::StdRng| match scratch.as_mut() {
        Some(scratch) => cfg.generate_with(rng, scratch),
        None => cfg.generate_reference(rng),
    };
    match inset {
        Inset::A | Inset::B => {
            // The partitioned RTA adaptation is substantially more
            // pessimistic than the global one (see DESIGN.md), so inset
            // (b) uses a lighter load to keep the discard rule (baseline
            // must accept the set) satisfiable.
            let m = M_DEFAULT;
            let u = if inset == Inset::A {
                0.5 * m as f64
            } else {
                1.0
            };
            let window = ConcurrencyWindow {
                m,
                l_min: (x - 1).max(1),
                l_max: x,
                max_attempts: WINDOW_BUDGET,
            };
            for _ in 0..DISCARD_BUDGET {
                // Resample the blocking-promotion probability so every
                // window is reachable.
                let p: f64 = rng.gen();
                let dag_cfg = DagGenConfig {
                    blocking: BlockingPolicy::Fixed(p),
                    ..DagGenConfig::default()
                };
                let cfg =
                    TaskSetConfig::new(N_TASKS_SMALL, u, dag_cfg).with_concurrency_window(window);
                let set = match generate(&cfg, rng) {
                    Ok(set) => set,
                    Err(GenError::WindowUnsatisfiable { .. }) => continue,
                    Err(e) => return Err(e.to_string()),
                };
                // One batched battery per generated set: the discard rule
                // (the concurrency-oblivious state of the art must accept
                // the set) and the measured proposed test share the
                // per-task base parameters and the memoized derived
                // artifacts of each DAG.
                let (prop, base) = evaluate_set(inset, &set, m);
                if !base {
                    continue;
                }
                return Ok(Some((set, m, prop, true)));
            }
            Ok(None)
        }
        Inset::C | Inset::D => {
            // Fixed total utilization while m grows: the penalty of
            // reduced concurrency should vanish for m ≥ 8 (the paper's
            // reading of insets (c)/(d)).
            let m = usize::try_from(x).expect("positive m");
            let u = if inset == Inset::C { 2.0 } else { 1.0 };
            let cfg = TaskSetConfig::new(N_TASKS_SMALL, u, DagGenConfig::default());
            let set = generate(&cfg, rng).map_err(|e| e.to_string())?;
            let (prop, base) = evaluate_set(inset, &set, m);
            Ok(Some((set, m, prop, base)))
        }
        Inset::E | Inset::F => {
            // Constant per-task utilization (0.4 each): adding tasks adds
            // load *and* raises the chance that some task has a
            // largely-reduced available concurrency, so schedulability
            // decreases with n — with the concurrency-aware tests
            // declining faster (the paper's reading of insets (e)/(f)).
            let m = M_DEFAULT;
            let n = usize::try_from(x).expect("positive n");
            let per_task = if inset == Inset::E { 0.4 } else { 0.15 };
            let cfg = TaskSetConfig::new(n, per_task * n as f64, DagGenConfig::default());
            let set = generate(&cfg, rng).map_err(|e| e.to_string())?;
            let (prop, base) = evaluate_set(inset, &set, m);
            Ok(Some((set, m, prop, base)))
        }
    }
}

pub(crate) fn is_global(inset: Inset) -> bool {
    matches!(inset, Inset::A | Inset::C | Inset::E)
}

/// Evaluates `(proposed, baseline)` schedulability for one set through
/// the shared [`pipeline::battery`], so every inset's analysis pass goes
/// through the same (cached) call path.
pub(crate) fn evaluate_set(inset: Inset, set: &TaskSet, m: usize) -> (bool, bool) {
    pipeline::battery(set, m, is_global(inset))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Fig2Params {
        Fig2Params {
            sets_per_point: 12,
            seed: 1,
            threads: 4,
        }
    }

    #[test]
    fn inset_parsing_and_metadata() {
        for inset in Inset::ALL {
            assert_eq!(Inset::parse(inset.letter()), Some(inset));
            assert!(!inset.description().is_empty());
            assert!(!inset.x_values().is_empty());
            assert!(!inset.proposed_label().is_empty());
            assert!(!inset.baseline_label().is_empty());
        }
        assert_eq!(Inset::parse("z"), None);
        assert_eq!(Inset::parse("A"), Some(Inset::A));
    }

    #[test]
    fn seeds_are_distinct_per_coordinate() {
        let a = derive_seed(7, Inset::A, 3, 0);
        let b = derive_seed(7, Inset::A, 3, 1);
        let c = derive_seed(7, Inset::A, 4, 0);
        let d = derive_seed(7, Inset::B, 3, 0);
        assert!(a != b && a != c && a != d && b != c);
    }

    #[test]
    fn inset_c_point_produces_ratios() {
        // m = 8 keeps generation cheap and acceptance high.
        let pool = SweepPool::new(4);
        let point = run_point(&pool, Inset::C, 8, &tiny_params());
        assert_eq!(point.samples + point.skipped + point.errors, 12);
        assert!(point.samples > 0);
        assert!((0.0..=1.0).contains(&point.proposed));
        assert!((0.0..=1.0).contains(&point.baseline));
        // The proposed (concurrency-aware) test is never more accepting.
        assert!(point.proposed <= point.baseline + 1e-12);
    }

    #[test]
    fn inset_a_baseline_is_one_by_construction() {
        let pool = SweepPool::new(4);
        let point = run_point(&pool, Inset::A, 6, &tiny_params());
        if point.samples > 0 {
            assert!((point.baseline - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn determinism() {
        let pool = SweepPool::new(4);
        let p1 = run_point(&pool, Inset::E, 4, &tiny_params());
        let p2 = run_point(&pool, Inset::E, 4, &tiny_params());
        assert_eq!(p1, p2);
    }

    #[test]
    fn results_independent_of_thread_count() {
        // Every (inset, x, sample) coordinate derives its own RNG stream
        // and lands in its own result slot, so the worker count must not
        // leak into the series. (tests/sweep_determinism.rs pins the
        // whole multi-inset run; this is the quick per-point check.)
        let serial_pool = SweepPool::new(1);
        let wide_pool = SweepPool::new(8);
        for inset in [Inset::C, Inset::E] {
            let serial = run_point(&serial_pool, inset, 4, &tiny_params());
            let wide = run_point(&wide_pool, inset, 4, &tiny_params());
            assert_eq!(serial, wide, "inset {} diverged", inset.letter());
        }
    }

    #[test]
    fn reference_point_matches_sweep_point() {
        // The reference (pre-optimization) path must stay bit-identical:
        // same RNG consumption, same verdicts, same tallies.
        let pool = SweepPool::new(3);
        for (inset, x) in [(Inset::A, 6), (Inset::C, 8), (Inset::E, 4)] {
            let fast = run_point(&pool, inset, x, &tiny_params());
            let reference = run_point_reference(inset, x, &tiny_params());
            assert_eq!(fast, reference, "inset {} diverged", inset.letter());
        }
    }

    #[test]
    fn sample_for_trace_is_deterministic_and_nonempty() {
        let (set, m) = sample_for_trace(Inset::C, 8, 1).expect("inset (c) always yields a set");
        assert_eq!(m, 8);
        assert_eq!(set.iter().count(), N_TASKS_SMALL);
        let (again, m2) = sample_for_trace(Inset::C, 8, 1).unwrap();
        assert_eq!(m2, 8);
        let volumes =
            |s: &TaskSet| -> Vec<u64> { s.iter().map(|(_, t)| t.dag().volume()).collect() };
        assert_eq!(volumes(&set), volumes(&again));
    }

    #[test]
    fn run_insets_matches_per_inset_runs() {
        let pool = SweepPool::new(4);
        let params = tiny_params();
        let batched = run_insets(&pool, &[Inset::C, Inset::E], &params);
        assert_eq!(batched.len(), 2);
        for (inset, series) in &batched {
            assert_eq!(series.len(), inset.x_values().len());
            let alone = run_inset(&pool, *inset, &params);
            assert_eq!(&alone, series, "inset {} diverged", inset.letter());
        }
    }
}
