//! Cross-backend differential battery: the same seeded task sets pushed
//! through the simulator and the native pool under **both** barrier
//! backends (and, on the pool, both dispatch engines), checking the
//! invariants each backend owes the paper's model:
//!
//! * every trace passes the schema validator — which in spin mode
//!   rejects `ThreadPark` during a busy-wait (`ParkWhileSpinning`) and
//!   any suspend/spin event cross-pairing;
//! * spin traces never contain a `BarrierSuspend`/`BarrierWake` pair
//!   (blocking never parks), suspend traces never contain
//!   `SpinStart`/`SpinEnd`;
//! * observed simultaneous blocking stays within `b̄` and observed
//!   `l(t)` respects the backend's floor: `m − b̄` (antichain) under
//!   suspend, and under spin additionally the harsher delay-count bound
//!   the spin analyses certify (`m − b̄_delay ≤ m − b̄`);
//! * suspend-mode results are bit-identical to the pre-spin-backend
//!   oracle (hard-coded response vectors from the seed pipeline), and a
//!   default `PoolConfig`/`TaskSet` still runs the suspend path.
//!
//! The corpus pushes 100+ distinct seeded sets through the battery (see
//! the `*_SETS` constants, enforced at compile time).

use std::time::Duration;

use rand::SeedableRng;
use rtpool_core::{deadlock, ConcurrencyAnalysis, SyncBackend, TaskSet};
use rtpool_exec::{Engine, PoolConfig, QueueDiscipline, ThreadPool};
use rtpool_gen::{DagGenConfig, TaskSetConfig};
use rtpool_sim::{SchedulingPolicy, SimConfig, SimOutcome};
use rtpool_trace::{EventKind, Trace, TraceAnalysis};

/// Distinct seeded sets pushed through the simulator (each under both
/// backends).
const SIM_SETS: usize = 84;
/// Distinct seeded sets pushed through the native pool (each under both
/// backends × both engines).
const EXEC_SETS: usize = 20;

// The suite's coverage floor, enforced at compile time.
const _: () = assert!(SIM_SETS + EXEC_SETS >= 100);

const POOL_ENGINES: [Engine; 2] = [Engine::V1Condvar, Engine::V2LockFree];

fn random_set(seed: u64, n: usize, util: f64) -> TaskSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    TaskSetConfig::new(n, util, DagGenConfig::default())
        .generate(&mut rng)
        .expect("unconstrained generation succeeds")
}

/// `true` when `kind` is a barrier-suspension event (the suspend
/// backend's blocking signature).
fn is_suspend_blocking(kind: &EventKind) -> bool {
    matches!(
        kind,
        EventKind::BarrierSuspend { .. } | EventKind::BarrierWake { .. }
    )
}

/// `true` when `kind` is a busy-wait event (the spin backend's blocking
/// signature).
fn is_spin_blocking(kind: &EventKind) -> bool {
    matches!(
        kind,
        EventKind::SpinStart { .. } | EventKind::SpinEnd { .. }
    )
}

/// Schema validity plus the backend's exclusive blocking signature: a
/// backend must only ever block in its own dialect.
fn assert_backend_signature(trace: &Trace, backend: SyncBackend, ctx: &str) {
    let defects = trace.validate();
    assert!(defects.is_empty(), "{ctx}: schema defects {defects:?}");
    for e in &trace.events {
        match backend {
            SyncBackend::Suspend => assert!(
                !is_spin_blocking(&e.kind),
                "{ctx}: spin event {:?} in a suspend-mode trace",
                e.kind
            ),
            SyncBackend::Spin => assert!(
                !is_suspend_blocking(&e.kind),
                "{ctx}: suspension event {:?} in a spin-mode trace \
                 (spin blocking must never park)",
                e.kind
            ),
        }
    }
}

/// Observed blocking within `b̄`, observed `l(t)` at or above the
/// backend's floor.
fn assert_floors(trace: &Trace, set: &TaskSet, m: usize, backend: SyncBackend, ctx: &str) {
    let analysis = TraceAnalysis::new(trace);
    for i in 0..trace.tasks as usize {
        let (_, task) = set.iter().nth(i).expect("trace task index in set range");
        let obs = analysis.task(i);
        let b_bar = task.dag().max_blocking_antichain().len();
        assert!(
            obs.max_simultaneous_blocking <= b_bar,
            "{ctx}: task {i} observed {} blocked threads, bound b\u{304} = {b_bar}",
            obs.max_simultaneous_blocking
        );
        let suspend_floor = ConcurrencyAnalysis::new(task.dag()).concurrency_lower_bound(m);
        assert!(
            obs.min_available as i64 >= suspend_floor,
            "{ctx}: task {i} observed l(t) = {} below the antichain floor {suspend_floor}",
            obs.min_available
        );
        if backend.is_spin() {
            // The spin analyses certify only the harsher delay-count
            // floor; the observation must respect it a fortiori.
            let spin_floor = m as i64 - task.dag().delay_profile().max_delay_count() as i64;
            assert!(
                obs.min_available as i64 >= spin_floor.min(suspend_floor),
                "{ctx}: task {i} observed l(t) = {} below the spin floor {spin_floor}",
                obs.min_available
            );
        }
    }
}

fn run_sim(set: &TaskSet, m: usize) -> (SimOutcome, Trace) {
    let mut out = SimConfig::single_job(SchedulingPolicy::Global, m)
        .with_event_trace()
        .run(set)
        .expect("simulation runs");
    let trace = out.take_event_trace().expect("tracing was enabled");
    (out, trace)
}

#[test]
fn sim_corpus_respects_each_backends_floors_and_signature() {
    const M: usize = 4;
    let mut spin_blocked_runs = 0usize;
    for seed in 0..SIM_SETS as u64 {
        let base = random_set(seed, 3, 2.0);
        for backend in SyncBackend::ALL {
            let set = base.clone().with_backend(backend);
            let (out, trace) = run_sim(&set, M);
            let ctx = format!("sim seed {seed} backend {}", backend.as_str());
            assert_backend_signature(&trace, backend, &ctx);
            assert_floors(&trace, &set, M, backend, &ctx);
            // The trace-derived observation agrees with the simulator's
            // own accounting under both backends.
            let analysis = TraceAnalysis::new(&trace);
            for (i, task_out) in out.tasks().iter().enumerate() {
                let obs = analysis.task(i);
                assert_eq!(
                    obs.responses, task_out.responses,
                    "{ctx}: task {i} responses"
                );
                assert_eq!(
                    obs.min_available, task_out.min_available_concurrency,
                    "{ctx}: task {i} min available"
                );
            }
            if backend.is_spin()
                && trace
                    .events
                    .iter()
                    .any(|e| matches!(e.kind, EventKind::SpinStart { .. }))
            {
                spin_blocked_runs += 1;
            }
        }
    }
    // The corpus must actually exercise busy-waiting, not just pass
    // vacuously on blocking-free sets.
    assert!(
        spin_blocked_runs >= SIM_SETS / 4,
        "only {spin_blocked_runs} spin runs ever busy-waited"
    );
}

/// Suspend-mode simulator results, pinned against the seed pipeline:
/// `(seed, per-task response vectors)` recorded before the spin backend
/// existed. A change to any of these numbers means the suspend path is
/// no longer the pre-PR behavior.
const SIM_SUSPEND_ORACLE: &[(u64, &[&[u64]])] = &[
    (0, &[&[], &[989], &[1378]]),
    (7, &[&[674], &[1502], &[]]),
    (19, &[&[1089], &[1303], &[2175]]),
    (42, &[&[], &[743], &[706]]),
    (63, &[&[997], &[], &[1553]]),
];

#[test]
fn sim_suspend_results_match_the_pre_spin_oracle() {
    const M: usize = 4;
    assert!(!SIM_SUSPEND_ORACLE.is_empty(), "oracle not recorded");
    for &(seed, expected) in SIM_SUSPEND_ORACLE {
        let set = random_set(seed, 3, 2.0);
        assert_eq!(set.backend(), SyncBackend::Suspend, "default backend");
        let (out, _) = run_sim(&set, M);
        let got: Vec<Vec<u64>> = out.tasks().iter().map(|t| t.responses.clone()).collect();
        let expected: Vec<Vec<u64>> = expected.iter().map(|r| r.to_vec()).collect();
        assert_eq!(got, expected, "seed {seed}: suspend responses drifted");
    }
}

#[test]
fn exec_corpus_runs_both_backends_on_both_engines() {
    const M: usize = 3;
    let mut spin_blocked_runs = 0usize;
    for seed in 0..EXEC_SETS as u64 {
        let set = random_set(seed, 2, 1.0);
        for (i, (_, task)) in set.iter().enumerate() {
            // Dispatch only DAGs certified for *both* backends: the
            // suspend certificate (exact antichain check) plus the spin
            // floor on the delay count — a spinning fork can stall pools
            // the antichain check accepts.
            let dag = task.dag();
            if !deadlock::check_global(dag, M).is_deadlock_free()
                || dag.delay_profile().max_delay_count() >= M
            {
                continue;
            }
            for engine in POOL_ENGINES {
                for backend in SyncBackend::ALL {
                    let mut pool = ThreadPool::new(
                        PoolConfig::new(M, QueueDiscipline::GlobalFifo)
                            .with_engine(engine)
                            .with_backend(backend)
                            .with_time_scale(Duration::ZERO)
                            .with_watchdog(Duration::from_secs(10))
                            .with_trace(),
                    );
                    let ctx = format!(
                        "exec seed {seed} task {i} {} backend {}",
                        engine.as_str(),
                        backend.as_str()
                    );
                    let mut report = pool
                        .run(dag)
                        .unwrap_or_else(|e| panic!("{ctx}: certified DAG failed: {e}"));
                    let trace = report
                        .trace
                        .take()
                        .expect("tracing was enabled")
                        .with_task_index(u32::try_from(i).unwrap());
                    assert_backend_signature(&trace, backend, &ctx);
                    assert_floors(&trace, &set, M, backend, &ctx);
                    let analysis = TraceAnalysis::new(&trace);
                    let obs = analysis.task(i);
                    assert!(!analysis.any_stall(), "{ctx}: certified DAG stalled");
                    assert_eq!(obs.completed, 1, "{ctx}: job completion");
                    assert_eq!(
                        obs.nodes_executed,
                        dag.node_count(),
                        "{ctx}: executed node count"
                    );
                    assert_eq!(
                        obs.min_available, report.min_available_workers,
                        "{ctx}: min available workers"
                    );
                    if backend.is_spin()
                        && trace
                            .events
                            .iter()
                            .any(|e| matches!(e.kind, EventKind::SpinStart { .. }))
                    {
                        spin_blocked_runs += 1;
                    }
                }
            }
        }
    }
    assert!(
        spin_blocked_runs > 0,
        "no exec spin run ever busy-waited — the corpus is vacuous"
    );
}

/// The pre-PR construction paths still mean suspend: a default
/// `PoolConfig` and an untouched generated `TaskSet` both run the
/// suspend backend, and an explicit `with_backend(Suspend)` changes
/// nothing about the (deterministic) logical outcome.
#[test]
fn default_paths_are_the_suspend_backend() {
    assert_eq!(
        PoolConfig::new(2, QueueDiscipline::GlobalFifo).backend,
        SyncBackend::Suspend
    );
    let set = random_set(0, 3, 2.0);
    assert_eq!(set.backend(), SyncBackend::Suspend);

    const M: usize = 4;
    let (default_out, default_trace) = run_sim(&set, M);
    let explicit = set.clone().with_backend(SyncBackend::Suspend);
    let (explicit_out, explicit_trace) = run_sim(&explicit, M);
    let fields = |o: &SimOutcome| -> Vec<(usize, usize, Vec<u64>, usize)> {
        o.tasks()
            .iter()
            .map(|t| {
                (
                    t.released,
                    t.completed,
                    t.responses.clone(),
                    t.min_available_concurrency,
                )
            })
            .collect()
    };
    assert_eq!(fields(&default_out), fields(&explicit_out));
    assert_eq!(default_trace.events.len(), explicit_trace.events.len());
}

/// Helper for recording the oracle: run with
/// `BACKEND_ORACLE_PRINT=1 cargo test -p rtpool-bench --test
/// backend_differential -- --nocapture print_oracle` and paste the
/// output into `SIM_SUSPEND_ORACLE`.
#[test]
fn print_oracle() {
    if std::env::var_os("BACKEND_ORACLE_PRINT").is_none() {
        return;
    }
    const M: usize = 4;
    for seed in [0u64, 7, 19, 42, 63] {
        let set = random_set(seed, 3, 2.0);
        let (out, _) = run_sim(&set, M);
        let rows: Vec<String> = out
            .tasks()
            .iter()
            .map(|t| {
                let rs: Vec<String> = t.responses.iter().map(u64::to_string).collect();
                format!("&[{}]", rs.join(", "))
            })
            .collect();
        println!("    ({seed}, &[{}]),", rows.join(", "));
    }
}
