//! Property tests for the admission service.
//!
//! 1. **Protocol round-trip**: the hand-rolled JSON-lines encoder and
//!    parser are exact inverses for arbitrary requests and responses,
//!    including sources containing quotes, backslashes, newlines, and
//!    control characters.
//! 2. **Degraded admits are sound**: a degraded *admit* from the
//!    Limited rung of the degradation ladder implies the definitive
//!    exact-antichain rung admits the same set on replay (the model
//!    dominance the ladder documentation promises). Degraded rejects
//!    carry no such guarantee — only admits are checked.
//! 3. **Delta hits are exact**: an `edit` request answered from a
//!    delta-patched cache entry produces the same verdict, rung, and
//!    content hash as submitting the equivalent mutated source cold to
//!    a fresh server — the patched `DerivedCache` never changes an
//!    answer, only its cost.

use proptest::prelude::*;
use rand::SeedableRng;
use rtpool_bench::serve::protocol::{
    encode_request, encode_response, parse_request, parse_response, LadderLevel, Request,
    RequestBody, Response, VerdictKind,
};
use rtpool_bench::serve::{run_ladder, run_ladder_capped, Interner, ServiceEvent, Supervisor};
use rtpool_core::textfmt::write_task_set;
use rtpool_core::{CancelToken, Task, TaskSet};
use rtpool_exec::{FaultPlan, RecoveryPolicy};
use rtpool_gen::{DagGenConfig, TaskSetConfig};
use rtpool_graph::NodeId;

/// A source string mixing benign text with every JSON escape class.
fn source_from(picks: &[u8]) -> String {
    const ALPHABET: &[&str] = &[
        "task",
        " ",
        "period=100",
        "\n",
        "\"",
        "\\",
        "\t",
        "\r",
        "\u{1}",
        "{",
        "}",
        "é",
        "∞",
        "node a wcet=3",
        "//",
        ":",
    ];
    picks
        .iter()
        .map(|p| ALPHABET[*p as usize % ALPHABET.len()])
        .collect()
}

fn random_set(seed: u64, n: usize, util: f64) -> TaskSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    TaskSetConfig::new(n, util, DagGenConfig::default())
        .generate(&mut rng)
        .expect("unconstrained generation succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_lines_round_trip(
        id in 0u64..u64::MAX,
        m in 1usize..512,
        priority in 0u8..8,
        deadline_us in 0u64..10_000_000,
        hash_body in 0u64..3,
        hash in 0u64..u64::MAX,
        picks in prop::collection::vec(0u8..255, 0..40),
    ) {
        let body = match hash_body {
            1 => RequestBody::Hash(hash),
            2 => RequestBody::Edit { base: hash, script: source_from(&picks) },
            _ => RequestBody::Source(source_from(&picks)),
        };
        let request = Request { id, m, priority, deadline_us, body };
        let line = encode_request(&request);
        prop_assert!(!line.contains('\n'), "encoded request spans lines: {line:?}");
        let back = parse_request(&line).map_err(|e| format!("parse failed: {e}"))?;
        prop_assert_eq!(back, request);
    }

    #[test]
    fn response_lines_round_trip(
        id in 0u64..u64::MAX,
        verdict_pick in 0usize..5,
        level_pick in 0usize..5,
        degraded_bit in 0u8..2,
        latency_us in 0u64..100_000_000,
        hash_bit in 0u8..2,
        hash in 0u64..u64::MAX,
        picks in prop::collection::vec(0u8..255, 0..40),
    ) {
        let degraded = degraded_bit == 1;
        let has_hash = hash_bit == 1;
        let verdict = [
            VerdictKind::Admit,
            VerdictKind::Reject,
            VerdictKind::Busy,
            VerdictKind::Shed,
            VerdictKind::Error,
        ][verdict_pick];
        let level = [
            None,
            Some(LadderLevel::Prefilter),
            Some(LadderLevel::Deadlock),
            Some(LadderLevel::Limited),
            Some(LadderLevel::Exact),
        ][level_pick];
        let response = Response {
            id,
            verdict,
            level,
            degraded,
            latency_us,
            hash: has_hash.then_some(hash),
            detail: source_from(&picks),
        };
        let line = encode_response(&response);
        prop_assert!(!line.contains('\n'), "encoded response spans lines: {line:?}");
        let back = parse_response(&line).map_err(|e| format!("parse failed: {e}"))?;
        prop_assert_eq!(back, response);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A degraded admit from the Limited rung is sound: replaying the
    /// same set through the full ladder (no budget cap) also admits.
    #[test]
    fn degraded_admit_implies_exact_admit(
        seed in 0u64..100_000,
        n in 2usize..5,
        util_tenths in 10u64..60,
    ) {
        let set = random_set(seed, n, util_tenths as f64 / 10.0);
        let m = 8;
        let token = CancelToken::never();
        let capped = run_ladder_capped(&set, m, &token, LadderLevel::Limited);
        if capped.admit && capped.degraded {
            let exact = run_ladder(&set, m, &token);
            prop_assert!(
                exact.admit,
                "degraded Limited admit but exact reject (seed {seed}, n {n}): {}",
                exact.detail
            );
        }
        // Non-degraded answers from the capped climb are definitive by
        // construction; they must agree with the full ladder exactly.
        if !capped.degraded {
            let exact = run_ladder(&set, m, &token);
            prop_assert_eq!(capped.admit, exact.admit);
        }
    }

    /// An `edit` request answered from the delta-patched cache entry
    /// agrees exactly — verdict, rung, and content hash — with the
    /// cold path: rendering the mutated set to source and submitting it
    /// to a fresh interner.
    #[test]
    fn delta_patched_edit_equals_cold_path(
        seed in 0u64..50_000,
        n in 1usize..4,
        util_tenths in 10u64..50,
        tpick in 0usize..64,
        npick in 0usize..256,
        wcet in 1u64..500,
    ) {
        let set = random_set(seed, n, util_tenths as f64 / 10.0);
        let task = tpick % set.len();
        let node = npick % set.iter().nth(task).expect("in range").1.dag().node_count();
        let m = 8;
        let sup = Supervisor::new(RecoveryPolicy::Abort, FaultPlan::seeded(0));
        let req = |id: u64, body: RequestBody| Request {
            id,
            m,
            priority: 4,
            deadline_us: 0,
            body,
        };
        let never = CancelToken::never();

        let interner = Interner::new(8);
        let based = sup.execute(
            0,
            &req(1, RequestBody::Source(write_task_set(&set))),
            &interner,
            &never,
        );
        let base = based.hash.expect("base request resolves a hash");
        let warm = sup.execute(
            1,
            &req(2, RequestBody::Edit {
                base,
                script: format!("wcet:{task}.{node}={wcet}"),
            }),
            &interner,
            &never,
        );
        prop_assert!(
            warm.events.contains(&ServiceEvent::CacheDeltaHit),
            "resident base must produce a delta hit: {}",
            warm.detail
        );

        // Cold path: the same mutation applied out-of-band, rendered to
        // source, analyzed by a fresh interner with no warm state.
        let patched: Vec<Task> = set
            .iter()
            .enumerate()
            .map(|(i, (_, t))| {
                if i == task {
                    let mut e = t.dag().edit();
                    e.set_wcet(NodeId::from_index(node), wcet);
                    let (dag, _) = e.apply().expect("a WCET edit is always valid");
                    Task::new(dag, t.period(), t.deadline()).expect("periods unchanged")
                } else {
                    t.clone()
                }
            })
            .collect();
        let cold_interner = Interner::new(8);
        let cold = sup.execute(
            2,
            &req(3, RequestBody::Source(write_task_set(&TaskSet::new(patched)))),
            &cold_interner,
            &never,
        );
        prop_assert_eq!(cold.verdict, warm.verdict, "warm detail: {}", warm.detail);
        prop_assert_eq!(cold.level, warm.level);
        prop_assert_eq!(cold.hash, warm.hash, "patched set hashes like its source form");
    }
}
