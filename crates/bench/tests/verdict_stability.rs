//! Verdict-stability checks for the derived-analysis cache: on a seeded
//! corpus, every schedulability test must return bit-identical results
//! whether the task DAGs carry warm memoized caches or freshly-built
//! empty ones.

use rand::SeedableRng;
use rtpool_bench::pipeline;
use rtpool_core::analysis::global::{self, ConcurrencyModel};
use rtpool_core::analysis::partitioned::PartitionStrategy;
use rtpool_core::{Task, TaskSet};
use rtpool_gen::{DagGenConfig, TaskSetConfig};

const M: usize = 8;

fn corpus(sets: usize) -> Vec<TaskSet> {
    (0..sets as u64)
        .map(|i| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xc0f_fee ^ i);
            TaskSetConfig::new(4, 2.0, DagGenConfig::default())
                .generate(&mut rng)
                .unwrap()
        })
        .collect()
}

fn rebuild_uncached(set: &TaskSet) -> TaskSet {
    TaskSet::new(
        set.as_slice()
            .iter()
            .map(|t| Task::new(t.dag().clone_uncached(), t.period(), t.deadline()).unwrap())
            .collect(),
    )
}

#[test]
fn global_verdicts_identical_cached_and_uncached() {
    for set in &corpus(10) {
        let uncached = rebuild_uncached(set);
        for model in [
            ConcurrencyModel::Full,
            ConcurrencyModel::Limited,
            ConcurrencyModel::LimitedExact,
        ] {
            assert_eq!(
                global::analyze(set, M, model),
                global::analyze(&uncached, M, model),
                "global verdict diverged under {model:?}"
            );
        }
    }
}

#[test]
fn partitioned_verdicts_identical_cached_and_uncached() {
    for set in &corpus(10) {
        let uncached = rebuild_uncached(set);
        for strategy in [PartitionStrategy::WorstFit, PartitionStrategy::Algorithm1] {
            let (warm, warm_maps) = pipeline::partition_and(set, M, strategy);
            let (cold, cold_maps) = pipeline::partition_and(&uncached, M, strategy);
            assert_eq!(
                warm, cold,
                "partitioned verdict diverged under {strategy:?}"
            );
            assert_eq!(
                warm_maps.iter().map(Option::is_some).collect::<Vec<_>>(),
                cold_maps.iter().map(Option::is_some).collect::<Vec<_>>(),
                "partition success pattern diverged under {strategy:?}"
            );
        }
    }
}

#[test]
fn batched_pass_identical_to_uncached_single_model_passes() {
    // The fig2 fast path (one batched global pass over a cached set)
    // against the slowest correct path (separate passes, cold caches).
    for set in &corpus(10) {
        let (full, limited) = pipeline::global_full_and_limited(set, M);
        assert_eq!(
            full,
            global::analyze(&rebuild_uncached(set), M, ConcurrencyModel::Full)
        );
        assert_eq!(
            limited,
            global::analyze(&rebuild_uncached(set), M, ConcurrencyModel::Limited)
        );
    }
}
