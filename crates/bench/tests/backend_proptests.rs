//! Property tests tying the spin-mode analysis to the simulator: if the
//! spin-aware RTA accepts a task set, the simulated spin execution must
//! finish within the analytic response-time bounds — the busy-wait
//! interference inflation is an upper bound on what spinning cores can
//! actually cost.

use proptest::prelude::*;
use rand::SeedableRng;
use rtpool_core::analysis::global::{self, ConcurrencyModel};
use rtpool_core::{SyncBackend, TaskId, TaskSet};
use rtpool_gen::{DagGenConfig, TaskSetConfig};
use rtpool_sim::{SchedulingPolicy, SimConfig};

fn random_set(seed: u64, n: usize, util: f64) -> TaskSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    TaskSetConfig::new(n, util, DagGenConfig::default())
        .generate(&mut rng)
        .expect("unconstrained generation succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Spin RTA soundness against the simulator: accepted spin sets
    /// observe responses at or below their analytic bounds.
    #[test]
    fn spin_rta_bound_dominates_sim_responses(
        seed in any::<u64>(), m in 2usize..6, n in 1usize..4
    ) {
        let set = random_set(seed, n, 1.2).with_backend(SyncBackend::Spin);
        let result = global::analyze(&set, m, ConcurrencyModel::Limited);
        if !result.is_schedulable() {
            return Ok(());
        }
        let out = SimConfig::single_job(SchedulingPolicy::Global, m)
            .run(&set)
            .expect("simulation runs");
        for (i, task_out) in out.tasks().iter().enumerate() {
            let bound = result
                .verdict(TaskId(i))
                .response_time()
                .expect("schedulable verdict carries a bound");
            prop_assert!(
                task_out.stall.is_none(),
                "seed {seed}: spin-schedulable set stalled at task {i}"
            );
            for &r in &task_out.responses {
                prop_assert!(
                    r <= bound,
                    "seed {seed}: task {i} observed spin response {r} > RTA bound {bound}"
                );
            }
        }
    }

    /// The suspend verdict dominates the spin verdict on the *same* set:
    /// flipping a schedulable set to spin may break it, never the other
    /// way around.
    #[test]
    fn spin_verdict_never_beats_suspend(seed in any::<u64>(), m in 2usize..9, n in 1usize..4) {
        let suspend_set = random_set(seed, n, 1.5);
        let spin_set = suspend_set.clone().with_backend(SyncBackend::Spin);
        let suspend = global::analyze(&suspend_set, m, ConcurrencyModel::Limited);
        let spin = global::analyze(&spin_set, m, ConcurrencyModel::Limited);
        if spin.is_schedulable() {
            prop_assert!(
                suspend.is_schedulable(),
                "seed {seed}: spin accepted a set suspend rejected"
            );
            for i in 0..n {
                let rs = suspend.verdict(TaskId(i)).response_time().unwrap();
                let rp = spin.verdict(TaskId(i)).response_time().unwrap();
                prop_assert!(rs <= rp, "seed {seed}: suspend bound {rs} above spin bound {rp}");
            }
        }
    }
}
