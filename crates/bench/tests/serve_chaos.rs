//! Chaos suite for the admission service: 70+ seeded [`FaultPlan`]s
//! (worker panics, shard stalls, queue-full storms, interner poison,
//! and mixtures) driven through an in-process [`Server`], asserting the
//! service's core liveness contract under every plan:
//!
//! 1. **Exactly one verdict per request** — every submitted line is
//!    answered exactly once (busy/shed/parse errors at submit, the rest
//!    by the supervised analysis workers), no duplicates, no losses.
//! 2. **The breaker re-closes** once an overload storm ends and
//!    latencies fall back under the SLO.
//!
//! Fault decisions are pure in `(seed, rule, request, attempt)`, so
//! every scenario here replays identically across runs and machines.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use rtpool_bench::serve::loadgen::{gen_request_lines, LoadConfig};
use rtpool_bench::serve::{BreakerConfig, ServeConfig, ServeReport, Server};
use rtpool_bench::sweep::SweepPool;
use rtpool_exec::{FaultPlan, RecoveryPolicy};

/// Tight retry backoff so panic-heavy scenarios stay fast.
fn fast_retry() -> RecoveryPolicy {
    RecoveryPolicy::RetryWithBackoff {
        max_retries: 2,
        base_delay: Duration::from_millis(1),
    }
}

/// A small deterministic workload; ids are `0..n`.
fn workload(seed: u64, n: usize) -> Vec<String> {
    gen_request_lines(&LoadConfig {
        requests: n,
        seed,
        n_tasks: 3,
        ..LoadConfig::default()
    })
}

/// Drives `lines` through a fresh 2-worker server under `config` and
/// returns the final report plus a per-id response count.
fn run_scenario(
    config: ServeConfig,
    lines: &[String],
    pace: Option<Duration>,
) -> (ServeReport, HashMap<u64, usize>) {
    let (server, rx) = Server::start(config, Arc::new(SweepPool::new(2)));
    let mut counts: HashMap<u64, usize> = HashMap::new();
    let mut answered = 0usize;
    for line in lines {
        server.submit(line);
        while let Ok(resp) = rx.try_recv() {
            *counts.entry(resp.id).or_default() += 1;
            answered += 1;
        }
        if let Some(p) = pace {
            std::thread::sleep(p);
        }
    }
    while answered < lines.len() {
        match rx.recv_timeout(Duration::from_secs(30)) {
            Ok(resp) => {
                *counts.entry(resp.id).or_default() += 1;
                answered += 1;
            }
            Err(_) => break,
        }
    }
    let report = server.shutdown();
    // Shutdown drains the backlog; collect anything that raced the
    // final recv loop.
    while let Ok(resp) = rx.try_recv() {
        *counts.entry(resp.id).or_default() += 1;
    }
    (report, counts)
}

/// Every id `0..n` answered exactly once — the chaos contract.
fn assert_exactly_one_verdict(scenario: &str, n: usize, counts: &HashMap<u64, usize>) {
    for id in 0..n as u64 {
        assert_eq!(
            counts.get(&id),
            Some(&1),
            "{scenario}: request {id} answered {:?} times (want exactly 1)",
            counts.get(&id).copied().unwrap_or(0)
        );
    }
    assert_eq!(
        counts.len(),
        n,
        "{scenario}: spurious response ids {:?}",
        counts
            .keys()
            .filter(|id| **id >= n as u64)
            .collect::<Vec<_>>()
    );
}

#[test]
fn worker_panic_storms_answer_every_request() {
    let mut total_panics = 0;
    for seed in 0..20u64 {
        let lines = workload(seed, 24);
        let config = ServeConfig {
            recovery: fast_retry(),
            faults: FaultPlan::seeded(seed).service_panic_prob(0.25),
            ..ServeConfig::default()
        };
        let (report, counts) = run_scenario(config, &lines, None);
        assert_exactly_one_verdict(&format!("panic seed {seed}"), lines.len(), &counts);
        total_panics += report.panics;
    }
    // Probability of zero firings across 20 seeds x 24 requests at
    // p=0.25 is astronomically small; the plans really inject.
    assert!(total_panics > 0, "panic plans never fired");
}

#[test]
fn shard_stalls_answer_every_request() {
    let mut stalled_any = false;
    for seed in 100..120u64 {
        let lines = workload(seed, 24);
        let config = ServeConfig {
            recovery: fast_retry(),
            faults: FaultPlan::seeded(seed)
                .service_stall_prob(0.3, Duration::from_millis(2))
                .service_slow_prob(0.3, Duration::from_millis(1)),
            ..ServeConfig::default()
        };
        let (report, counts) = run_scenario(config, &lines, None);
        assert_exactly_one_verdict(&format!("stall seed {seed}"), lines.len(), &counts);
        // Stalled shards show up as latency, never as losses.
        stalled_any |= report.latency.max().is_some_and(|v| v >= 2_000);
    }
    assert!(stalled_any, "stall plans never added visible latency");
}

#[test]
fn queue_full_storms_refuse_with_busy_not_silence() {
    let mut total_busy = 0;
    for seed in 200..220u64 {
        let lines = workload(seed, 24);
        let config = ServeConfig {
            queue_cap: 2,
            recovery: fast_retry(),
            faults: FaultPlan::seeded(seed).service_slow_storm(0, 24, Duration::from_millis(3)),
            ..ServeConfig::default()
        };
        let (report, counts) = run_scenario(config, &lines, None);
        assert_exactly_one_verdict(&format!("queue storm seed {seed}"), lines.len(), &counts);
        total_busy += report.busy;
        assert_eq!(
            report.accepted + report.busy + report.shed,
            lines.len() as u64,
            "queue storm seed {seed}: ingress accounting leak"
        );
    }
    assert!(
        total_busy > 0,
        "a 2-slot queue under an unpaced slow storm never overflowed"
    );
}

#[test]
fn mixed_fault_plans_answer_every_request() {
    for seed in 300..311u64 {
        let lines = workload(seed, 20);
        let config = ServeConfig {
            recovery: fast_retry(),
            faults: FaultPlan::seeded(seed)
                .service_panic_prob(0.15)
                .service_stall_prob(0.15, Duration::from_millis(1))
                .service_poison_prob(0.1),
            ..ServeConfig::default()
        };
        let (_, counts) = run_scenario(config, &lines, None);
        assert_exactly_one_verdict(&format!("mixed seed {seed}"), lines.len(), &counts);
    }
}

#[test]
fn breaker_reopens_then_recloses_after_the_storm_ends() {
    // Storm: the first 12 accepted requests are slowed far past the
    // 20 ms SLO, tripping the breaker. The storm is drained completely
    // before the calm phase starts, so calm requests do not inherit
    // queue wait behind stormed ones; their windows fall back under
    // the SLO and the breaker must re-close by shutdown. (Shed
    // responses do not feed the breaker window, so the calm phase is
    // sized for several full windows of served high-priority requests.)
    let lines = workload(0xb4ea, 60);
    let storm_len = 12;
    let config = ServeConfig {
        breaker: BreakerConfig {
            slo_p99_us: 20_000,
            window: 8,
            shed_below_priority: 4,
        },
        recovery: fast_retry(),
        faults: FaultPlan::seeded(7).service_slow_storm(
            0,
            storm_len as u64,
            Duration::from_millis(100),
        ),
        ..ServeConfig::default()
    };
    let (server, rx) = Server::start(config, Arc::new(SweepPool::new(2)));
    let mut counts: HashMap<u64, usize> = HashMap::new();
    let mut answered = 0usize;
    let mut drain_until = |target: usize, counts: &mut HashMap<u64, usize>| {
        while answered < target {
            match rx.recv_timeout(Duration::from_secs(30)) {
                Ok(resp) => {
                    *counts.entry(resp.id).or_default() += 1;
                    answered += 1;
                }
                Err(_) => break,
            }
        }
    };
    for line in &lines[..storm_len] {
        server.submit(line);
    }
    drain_until(storm_len, &mut counts);
    for line in &lines[storm_len..] {
        server.submit(line);
        std::thread::sleep(Duration::from_millis(1));
    }
    drain_until(lines.len(), &mut counts);
    let report = server.shutdown();
    while let Ok(resp) = rx.try_recv() {
        *counts.entry(resp.id).or_default() += 1;
    }
    assert_exactly_one_verdict("breaker storm", lines.len(), &counts);
    assert!(
        report.breaker.opens >= 1,
        "a 100 ms slow storm against a 20 ms SLO never opened the breaker"
    );
    assert!(
        !report.breaker.open,
        "breaker still open after the storm ended and fast windows completed \
         ({:?})",
        report.breaker
    );
    assert_eq!(report.breaker.opens, report.breaker.closes);
}
