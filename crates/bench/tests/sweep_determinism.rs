//! Whole-run determinism of the work-stealing sweep engine: the entire
//! multi-inset Figure 2 grid — all six insets as one flat work queue —
//! must produce bit-identical series (including skipped and error
//! counts) for any worker count, and repeated runs on the same pool
//! must agree too.

use rtpool_bench::fig2::{run_insets, Fig2Params, Inset};
use rtpool_bench::sweep::SweepPool;

fn tiny_params() -> Fig2Params {
    Fig2Params {
        sets_per_point: 2,
        seed: 0x5eed_f00d,
        threads: 8,
    }
}

#[test]
fn whole_multi_inset_run_is_thread_count_independent() {
    let params = tiny_params();
    let serial_pool = SweepPool::new(1);
    let wide_pool = SweepPool::new(8);

    let serial = run_insets(&serial_pool, &Inset::ALL, &params);
    let wide = run_insets(&wide_pool, &Inset::ALL, &params);

    assert_eq!(serial.len(), wide.len());
    for ((inset_s, series_s), (inset_w, series_w)) in serial.iter().zip(&wide) {
        assert_eq!(inset_s, inset_w);
        assert_eq!(series_s.len(), inset_s.x_values().len());
        // Bit-identical: ratios, samples, skipped, and error counts.
        assert_eq!(
            series_s,
            series_w,
            "inset ({}) diverged between 1 and 8 workers",
            inset_s.letter()
        );
    }
}

#[test]
fn repeated_runs_on_one_pool_agree() {
    let params = tiny_params();
    let pool = SweepPool::new(4);
    let first = run_insets(&pool, &Inset::ALL, &params);
    let second = run_insets(&pool, &Inset::ALL, &params);
    assert_eq!(first, second);
}
