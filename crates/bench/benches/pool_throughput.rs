//! Benchmarks of the native thread pool: blocking versus non-blocking
//! semantics (the Figure 1(b) slowdown, measured on real condvars) and
//! the three queue disciplines.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtpool_core::partition::algorithm1;
use rtpool_exec::{PoolConfig, QueueDiscipline, ThreadPool};
use rtpool_graph::{Dag, DagBuilder};

fn wide_job(blocking: bool) -> Dag {
    // A fork-join with 16 children of 2 units each, flanked by a chain.
    let mut b = DagBuilder::new();
    let head = b.add_node(1);
    let (f, j) = b.fork_join(1, &[2; 16], 1, blocking).unwrap();
    let tail = b.add_node(1);
    b.add_edge(head, f).unwrap();
    b.add_edge(j, tail).unwrap();
    b.build().unwrap()
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_throughput");
    group.sample_size(20);
    let scale = Duration::from_micros(20);

    for blocking in [false, true] {
        let dag = wide_job(blocking);
        let label = if blocking { "blocking" } else { "non_blocking" };
        group.bench_with_input(BenchmarkId::new("global_fifo", label), &dag, |b, dag| {
            let mut pool = ThreadPool::new(
                PoolConfig::new(4, QueueDiscipline::GlobalFifo).with_time_scale(scale),
            );
            b.iter(|| pool.run(std::hint::black_box(dag)).expect("completes"));
        });
        group.bench_with_input(BenchmarkId::new("work_stealing", label), &dag, |b, dag| {
            let mut pool = ThreadPool::new(
                PoolConfig::new(4, QueueDiscipline::WorkStealing { seed: 7 })
                    .with_time_scale(scale),
            );
            b.iter(|| pool.run(std::hint::black_box(dag)).expect("completes"));
        });
    }

    // Partitioned with an Algorithm 1 (delay-free) mapping.
    let dag = wide_job(true);
    let mapping = algorithm1(&dag, 4).expect("partitionable");
    group.bench_function("partitioned/blocking", |b| {
        let mut pool = ThreadPool::new(
            PoolConfig::new(4, QueueDiscipline::Partitioned(mapping.clone()))
                .with_time_scale(scale),
        );
        b.iter(|| pool.run(std::hint::black_box(&dag)).expect("completes"));
    });

    // Dispatch overhead: zero-duration bodies isolate synchronization.
    let dag = wide_job(true);
    group.bench_function("global_fifo/overhead_only", |b| {
        let mut pool = ThreadPool::new(
            PoolConfig::new(4, QueueDiscipline::GlobalFifo).with_time_scale(Duration::ZERO),
        );
        b.iter(|| pool.run(std::hint::black_box(&dag)).expect("completes"));
    });
    group.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
