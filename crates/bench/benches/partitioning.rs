//! Micro-benchmarks for Algorithm 1 (the paper reports `O(|V|⁴)`) versus
//! the blocking-oblivious worst-fit baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rtpool_core::partition::{algorithm1, worst_fit};
use rtpool_gen::DagGenConfig;
use rtpool_graph::Dag;

fn graph_of_size(target_nodes: usize) -> Dag {
    let mut rng = rand::rngs::StdRng::seed_from_u64(target_nodes as u64);
    let mut cfg = DagGenConfig {
        p_terminal: 0.1,
        ..DagGenConfig::default()
    };
    loop {
        let dag = cfg.generate(&mut rng);
        if dag.node_count() >= target_nodes {
            return dag;
        }
        cfg.max_sequence += 1;
    }
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioning");
    let m = 8;
    for size in [25usize, 100, 400] {
        let dag = graph_of_size(size);
        group.bench_with_input(
            BenchmarkId::new("algorithm1", dag.node_count()),
            &dag,
            |b, dag| b.iter(|| std::hint::black_box(algorithm1(dag, m))),
        );
        group.bench_with_input(
            BenchmarkId::new("worst_fit", dag.node_count()),
            &dag,
            |b, dag| b.iter(|| std::hint::black_box(worst_fit(dag, m))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
