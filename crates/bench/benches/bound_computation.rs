//! Micro-benchmarks for the Section 3.1 concurrency bounds: `C(v)`,
//! `b̄(τ)`, `l̄(τ)` (the paper reports cubic complexity), and the exact
//! maximum-antichain refinement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rtpool_core::ConcurrencyAnalysis;
use rtpool_gen::DagGenConfig;
use rtpool_graph::Dag;

fn graph_of_size(target_nodes: usize) -> Dag {
    // Grow the generator's width until the node count is near the target.
    let mut rng = rand::rngs::StdRng::seed_from_u64(target_nodes as u64);
    let mut cfg = DagGenConfig {
        p_terminal: 0.1,
        ..DagGenConfig::default()
    };
    loop {
        let dag = cfg.generate(&mut rng);
        if dag.node_count() >= target_nodes {
            return dag;
        }
        cfg.max_sequence += 1;
    }
}

fn bench_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrency_bounds");
    for size in [25usize, 100, 400] {
        let dag = graph_of_size(size);
        group.bench_with_input(
            BenchmarkId::new("analysis_build", dag.node_count()),
            &dag,
            |b, dag| b.iter(|| ConcurrencyAnalysis::new(std::hint::black_box(dag))),
        );
        let ca = ConcurrencyAnalysis::new(&dag);
        group.bench_with_input(BenchmarkId::new("b_bar", dag.node_count()), &ca, |b, ca| {
            b.iter(|| std::hint::black_box(ca.max_delay_count()))
        });
        group.bench_with_input(
            BenchmarkId::new("exact_antichain", dag.node_count()),
            &ca,
            |b, ca| b.iter(|| std::hint::black_box(ca.max_suspended_forks())),
        );
        // Cache miss path: every iteration pays the full derived-artifact
        // computation on a cache-less structural copy, as every analysis
        // call did before the shared cache existed.
        group.bench_with_input(
            BenchmarkId::new("b_bar_uncached", dag.node_count()),
            &dag,
            |b, dag| {
                b.iter(|| {
                    let fresh = dag.clone_uncached();
                    std::hint::black_box(ConcurrencyAnalysis::new(&fresh).max_delay_count())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exact_antichain_uncached", dag.node_count()),
            &dag,
            |b, dag| {
                b.iter(|| {
                    let fresh = dag.clone_uncached();
                    std::hint::black_box(
                        ConcurrencyAnalysis::new(&fresh).max_suspended_forks().len(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
