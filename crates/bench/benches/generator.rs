//! Micro-benchmarks for the synthetic workload generator, including the
//! rejection-sampling cost of the concurrency window used by Figure
//! 2(a)/(b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rtpool_gen::{ConcurrencyWindow, DagGenConfig, TaskSetConfig};

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.bench_function("dag_default", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cfg = DagGenConfig::default();
        b.iter(|| std::hint::black_box(cfg.generate(&mut rng)))
    });
    for n in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("task_set", n), &n, |b, &n| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            let cfg = TaskSetConfig::new(n, 2.0, DagGenConfig::default());
            b.iter(|| std::hint::black_box(cfg.generate(&mut rng).expect("generates")))
        });
    }
    group.bench_function("task_set_windowed", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let cfg = TaskSetConfig::new(4, 2.0, DagGenConfig::default())
            .with_concurrency_window(ConcurrencyWindow::around(8, 5));
        b.iter(|| std::hint::black_box(cfg.generate(&mut rng).expect("generates")))
    });
    group.finish();
}

criterion_group!(benches, bench_generator);
criterion_main!(benches);
