//! Micro-benchmarks for the response-time analyses: the Melani baseline,
//! the limited-concurrency adaptation (Section 4.1), and the partitioned
//! pipeline (Section 4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rtpool_core::analysis::global::{self, ConcurrencyModel};
use rtpool_core::analysis::partitioned::{self, PartitionStrategy};
use rtpool_core::TaskSet;
use rtpool_gen::{DagGenConfig, TaskSetConfig};

fn set_of(n: usize, u: f64, seed: u64) -> TaskSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    TaskSetConfig::new(n, u, DagGenConfig::default())
        .generate(&mut rng)
        .expect("generation succeeds")
}

fn bench_rta(c: &mut Criterion) {
    let m = 8;
    let mut group = c.benchmark_group("rta");
    for n in [4usize, 8, 16] {
        let set = set_of(n, 2.0, n as u64);
        group.bench_with_input(BenchmarkId::new("global_full", n), &set, |b, set| {
            b.iter(|| std::hint::black_box(global::analyze(set, m, ConcurrencyModel::Full)))
        });
        group.bench_with_input(BenchmarkId::new("global_limited", n), &set, |b, set| {
            b.iter(|| std::hint::black_box(global::analyze(set, m, ConcurrencyModel::Limited)))
        });
        group.bench_with_input(
            BenchmarkId::new("partitioned_algorithm1", n),
            &set,
            |b, set| {
                b.iter(|| {
                    std::hint::black_box(partitioned::partition_and_analyze(
                        set,
                        m,
                        PartitionStrategy::Algorithm1,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("partitioned_worst_fit", n),
            &set,
            |b, set| {
                b.iter(|| {
                    std::hint::black_box(partitioned::partition_and_analyze(
                        set,
                        m,
                        PartitionStrategy::WorstFit,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rta);
criterion_main!(benches);
