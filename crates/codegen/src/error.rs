//! The gate's failure type; its `Display` *is* the build-failure text.

use std::fmt;
use std::io;

use rtpool_lint::{render_human, LintReport, Severity};

use crate::fix_notes;

/// Why certification failed.
#[derive(Debug)]
pub enum CodegenError {
    /// The workload file (or `OUT_DIR`) could not be read/written.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        source: io::Error,
    },
    /// The lint gate rejected the workload.
    Rejected {
        /// The workload path.
        path: String,
        /// The pool size the gate analyzed against.
        m: usize,
        /// Build-failing findings.
        errors: usize,
        /// The full rustc-style report (gutter snippets, `^^^` spans,
        /// `= help:` suggestions), pre-rendered against the source.
        rendered: String,
        /// Machine-applicable fix payloads as `note[RTxxx]:` lines.
        notes: String,
    },
}

impl CodegenError {
    pub(crate) fn rejected(path: &str, m: usize, report: &LintReport, source: &str) -> Self {
        CodegenError::Rejected {
            path: path.to_owned(),
            m,
            errors: report
                .diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count(),
            rendered: render_human(report, Some(source)),
            notes: fix_notes(report),
        }
    }
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Io { path, source } => {
                write!(f, "rtpool-codegen: cannot access {path}: {source}")
            }
            CodegenError::Rejected {
                path,
                m,
                errors,
                rendered,
                notes,
            } => {
                writeln!(
                    f,
                    "error: rtpool-codegen refused to certify `{path}` for a pool of {m} \
                     worker{} ({errors} build-failing finding{})",
                    if *m == 1 { "" } else { "s" },
                    if *errors == 1 { "" } else { "s" },
                )?;
                writeln!(f)?;
                f.write_str(rendered)?;
                if !notes.is_empty() {
                    writeln!(f)?;
                    f.write_str(notes)?;
                }
                write!(
                    f,
                    "\nhelp: fix the workload (see the suggestions above), raise `m`, or \
                     relax the gate's deny policy in build.rs"
                )
            }
        }
    }
}

impl std::error::Error for CodegenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodegenError::Io { source, .. } => Some(source),
            CodegenError::Rejected { .. } => None,
        }
    }
}
