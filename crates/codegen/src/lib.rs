//! # rtpool-codegen
//!
//! Build-time certification of `.rtp` workloads: a `build.rs`-facing
//! library that turns the `rtlint` static-analysis pass into a **compile
//! gate** and, for passing workloads, emits a typed Rust module.
//!
//! The pipeline is
//!
//! ```text
//! workload.rtp ──parse──▶ TaskSet ──rtlint (deny policy)──▶ rejected?
//!                                         │                     │
//!                                         ▼                     ▼
//!                           typed module (OUT_DIR)    cargo build FAILS with
//!                           const tables + proof      rustc-style diagnostics
//!                           token DeadlockFree<M,B̄>   + machine-applicable
//!                                                      fix notes
//! ```
//!
//! The generated module contains `const` task/node/edge tables
//! (`StaticTask`/`StaticNode` from `rtpool-exec`), typed node handles,
//! and a `CertifiedConfig<M, B_BAR>` whose zero-sized
//! `DeadlockFree::CERTIFIED` proof token asserts the paper's Lemma 1
//! floor `m ≥ b̄ + 1` *during `const` evaluation* — an undersized pool
//! size therefore fails `cargo build` twice over: once in this library's
//! lint gate with a full RT101 diagnostic, and (defense in depth, had
//! the gate been bypassed) once in the const assertion of the emitted
//! token. `ThreadPool::new_static` accepts only such configs.
//!
//! ## `build.rs` usage
//!
//! ```no_run
//! use rtpool_codegen::Codegen;
//!
//! // build.rs
//! Codegen::new("workloads/pipeline.rtp", 6)
//!     .deny_warnings()
//!     .compile("certified_pipeline");
//! ```
//!
//! and in the crate:
//!
//! ```ignore
//! mod certified_pipeline {
//!     include!(concat!(env!("OUT_DIR"), "/certified_pipeline.rs"));
//! }
//! let mut pool = rtpool_exec::ThreadPool::new_static(&certified_pipeline::CONFIG);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emit;
mod error;

pub use emit::certified_module_source;
pub use error::CodegenError;

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use rtpool_core::textfmt::SourceSpans;
use rtpool_core::{SyncBackend, TaskSet};
use rtpool_lint::{check_source, LintOptions, RuleCode, Severity};

/// Everything the lint gate certified about a workload; input to module
/// emission and available to `build.rs` scripts for logging.
#[derive(Clone, Debug)]
pub struct Certified {
    /// The workload path, as given to [`Codegen::new`].
    pub source_path: String,
    /// The raw `.rtp` text.
    pub source_text: String,
    /// The certified pool size.
    pub m: usize,
    /// The workload's maximum simultaneously-suspended blocking-fork
    /// antichain, maximized over tasks.
    pub b_bar: usize,
    /// The workload's maximum per-node delay-set size, maximized over
    /// tasks: the spin-mode blocking bound. Always `>= b_bar` — a
    /// busy-waiting fork never frees its core, so mutually-exclusive
    /// blocking regions (which an antichain excludes) still stack up.
    pub b_bar_delay: usize,
    /// The barrier-wait backend declared by the workload's `backend`
    /// directive ([`SyncBackend::Suspend`] when absent). The gate's
    /// RT101 floor is `m >= b_bar + 1` under suspend but
    /// `m >= b_bar_delay + 1` under spin.
    pub backend: SyncBackend,
    /// The parsed tasks.
    pub task_set: TaskSet,
    /// Declaration-site spans (node names live here).
    pub spans: SourceSpans,
    /// Warnings that passed the deny policy (rendered, for
    /// `cargo:warning=` forwarding).
    pub warnings: Vec<String>,
}

/// The build-time certification gate: configure a workload and a lint
/// policy, then [`compile`](Codegen::compile) a typed module into
/// `OUT_DIR` — or fail the build with the lint findings.
#[derive(Clone, Debug)]
pub struct Codegen {
    path: PathBuf,
    m: usize,
    allow: BTreeSet<RuleCode>,
    deny: BTreeSet<RuleCode>,
    deny_warnings: bool,
}

impl Codegen {
    /// A gate for the workload at `path`, certifying a pool of `m`
    /// workers.
    pub fn new(path: impl Into<PathBuf>, m: usize) -> Self {
        Codegen {
            path: path.into(),
            m,
            allow: BTreeSet::new(),
            deny: BTreeSet::new(),
            deny_warnings: false,
        }
    }

    /// Suppresses a rule (`"RT102"`-style code).
    ///
    /// # Panics
    ///
    /// Panics on an unknown code — a typo in a build script should fail
    /// loudly, not silently keep the rule enabled.
    #[must_use]
    pub fn allow(mut self, code: &str) -> Self {
        self.allow.insert(parse_code(code));
        self
    }

    /// Promotes a rule to a build-failing error.
    ///
    /// # Panics
    ///
    /// Panics on an unknown code.
    #[must_use]
    pub fn deny(mut self, code: &str) -> Self {
        self.deny.insert(parse_code(code));
        self
    }

    /// Promotes every warning to a build-failing error (the gate's
    /// `--deny warnings`).
    #[must_use]
    pub fn deny_warnings(mut self) -> Self {
        self.deny_warnings = true;
        self
    }

    fn options(&self) -> LintOptions {
        LintOptions {
            m: self.m,
            allow: self.allow.clone(),
            deny: self.deny.clone(),
            deny_warnings: self.deny_warnings,
        }
    }

    /// Runs the full lint pass over the workload under this gate's deny
    /// policy.
    ///
    /// # Errors
    ///
    /// [`CodegenError::Io`] when the file is unreadable,
    /// [`CodegenError::Rejected`] when any finding reaches
    /// [`Severity::Error`] — the error's `Display` is the complete
    /// rustc-style report plus machine-applicable fix notes.
    pub fn certify(&self) -> Result<Certified, CodegenError> {
        let source_path = self.path.display().to_string();
        let source_text = fs::read_to_string(&self.path).map_err(|source| CodegenError::Io {
            path: source_path.clone(),
            source,
        })?;
        self.certify_source(source_path, source_text)
    }

    /// [`Codegen::certify`] over in-memory text (the file at the
    /// configured path is never read). Pure; unit tests and the
    /// compile-fail harness use it to avoid filesystem coupling.
    ///
    /// # Errors
    ///
    /// [`CodegenError::Rejected`] as for [`Codegen::certify`].
    pub fn certify_source(
        &self,
        source_path: impl Into<String>,
        source_text: impl Into<String>,
    ) -> Result<Certified, CodegenError> {
        let source_path = source_path.into();
        let source_text = source_text.into();
        let opts = self.options();
        let (report, parsed) = check_source(source_path.clone(), &source_text, &opts);
        let rejected = report.has_failures() || parsed.is_none();
        if rejected {
            return Err(CodegenError::rejected(
                &source_path,
                self.m,
                &report,
                &source_text,
            ));
        }
        let (task_set, spans) = parsed.expect("parse succeeded");
        let b_bar = task_set
            .iter()
            .map(|(_, t)| t.dag().max_blocking_antichain().len())
            .max()
            .unwrap_or(0);
        let b_bar_delay = task_set
            .iter()
            .map(|(_, t)| t.dag().delay_profile().max_delay_count())
            .max()
            .unwrap_or(0);
        let backend = task_set.backend();
        let warnings = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .map(|d| format!("{}: {} [{}]", source_path, d.message, d.code))
            .collect();
        Ok(Certified {
            source_path,
            source_text,
            m: self.m,
            b_bar,
            b_bar_delay,
            backend,
            task_set,
            spans,
            warnings,
        })
    }

    /// Certifies the workload and returns the generated module source.
    ///
    /// # Errors
    ///
    /// As for [`Codegen::certify`].
    pub fn generate_string(&self) -> Result<String, CodegenError> {
        Ok(certified_module_source(&self.certify()?))
    }

    /// Certifies the workload and writes `<module>.rs` into `OUT_DIR`,
    /// emitting the `cargo:rerun-if-changed` directive for the workload
    /// and forwarding surviving warnings as `cargo:warning=` lines.
    ///
    /// **Aborts the build** (prints the full diagnostic report to stderr
    /// and exits nonzero) when the gate rejects the workload — this is
    /// the intended `build.rs` entry point; use
    /// [`Codegen::try_compile`] to handle rejection yourself.
    pub fn compile(&self, module: &str) -> PathBuf {
        match self.try_compile(module) {
            Ok(path) => path,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }

    /// Like [`Codegen::compile`], returning the rejection instead of
    /// aborting.
    ///
    /// # Errors
    ///
    /// As for [`Codegen::certify`], plus [`CodegenError::Io`] when
    /// `OUT_DIR` is unset or unwritable.
    pub fn try_compile(&self, module: &str) -> Result<PathBuf, CodegenError> {
        println!("cargo:rerun-if-changed={}", self.path.display());
        let certified = self.certify()?;
        for w in &certified.warnings {
            println!("cargo:warning={w}");
        }
        let out_dir = std::env::var_os("OUT_DIR").ok_or_else(|| CodegenError::Io {
            path: "$OUT_DIR".into(),
            source: std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "OUT_DIR is not set: Codegen::compile must run from build.rs",
            ),
        })?;
        let out = Path::new(&out_dir).join(format!("{module}.rs"));
        fs::write(&out, certified_module_source(&certified)).map_err(|source| {
            CodegenError::Io {
                path: out.display().to_string(),
                source,
            }
        })?;
        Ok(out)
    }
}

fn parse_code(code: &str) -> RuleCode {
    RuleCode::parse(code)
        .filter(|c| c.info().is_some())
        .unwrap_or_else(|| panic!("unknown rtlint rule code `{code}` in codegen policy"))
}

/// Renders the machine-applicable fix payloads of a report as
/// build-failure notes (one line per fix), or an empty string when no
/// diagnostic carries one.
#[must_use]
pub fn fix_notes(report: &rtpool_lint::LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let Some(fix) = &d.fix else { continue };
        let mut line = format!("note[{}]: {}", d.code, fix.message);
        for (key, value) in &fix.data {
            let _ = write!(line, " ({key} = {value})");
        }
        if !fix.edits.is_empty() {
            let _ = write!(
                line,
                " [{} source edit{} available via `rtlint --fix-dry-run`]",
                fix.edits.len(),
                if fix.edits.len() == 1 { "" } else { "s" }
            );
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1_LIKE: &str = "\
task period=400 deadline=400
  node f 1
  node a 2
  node b 2
  node j 1
  edge f a
  edge f b
  edge a j
  edge b j
  blocking f j
end
";

    #[test]
    fn gate_passes_a_safe_pool() {
        let certified = Codegen::new("demo.rtp", 2)
            .certify_source("demo.rtp", FIGURE1_LIKE)
            .expect("m = 2 > b\u{304} = 1 certifies");
        assert_eq!(certified.m, 2);
        assert_eq!(certified.b_bar, 1);
        assert_eq!(certified.task_set.len(), 1);
    }

    #[test]
    fn gate_rejects_an_undersized_pool_with_rt101_and_fix_note() {
        let err = Codegen::new("demo.rtp", 1)
            .certify_source("demo.rtp", FIGURE1_LIKE)
            .expect_err("m = 1 deadlocks");
        let rendered = err.to_string();
        assert!(rendered.contains("RT101"), "RT101 missing:\n{rendered}");
        assert!(
            rendered.contains("suggested_m = 2"),
            "fix payload note missing:\n{rendered}"
        );
        assert!(rendered.contains("error"), "not an error:\n{rendered}");
    }

    #[test]
    fn gate_rejects_parse_failures() {
        let err = Codegen::new("demo.rtp", 4)
            .certify_source("demo.rtp", "task period=oops\nend\n")
            .expect_err("malformed header");
        assert!(err.to_string().contains("RT001"), "{err}");
    }

    #[test]
    fn deny_warnings_promotes_rt2xx() {
        // A zero-WCET node is RT202 (warning): passes by default, fails
        // under deny_warnings.
        let src = "task period=10\n  node a 0\nend\n";
        assert!(Codegen::new("w.rtp", 2)
            .certify_source("w.rtp", src)
            .is_ok());
        let err = Codegen::new("w.rtp", 2)
            .deny_warnings()
            .certify_source("w.rtp", src)
            .expect_err("promoted to error");
        assert!(err.to_string().contains("RT202"), "{err}");
    }

    #[test]
    fn allow_suppresses_a_denied_rule() {
        let src = "task period=10\n  node a 0\nend\n";
        assert!(Codegen::new("w.rtp", 2)
            .deny_warnings()
            .allow("RT202")
            .certify_source("w.rtp", src)
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "unknown rtlint rule code")]
    fn unknown_policy_code_panics() {
        let _ = Codegen::new("w.rtp", 2).deny("RT999");
    }

    /// Two branches, each a chain of two blocking regions: the blocking
    /// antichain is 2 but the delay count is 3, so the suspend and spin
    /// floors disagree at m = 3.
    const CHAINED_REGIONS: &str = "\
task period=1000 deadline=1000
  node src 1
  node f1 2
  node a1 5
  node a2 5
  node j1 2
  node f2 2
  node b1 5
  node b2 5
  node j2 2
  node f3 2
  node c1 5
  node c2 5
  node j3 2
  node f4 2
  node d1 5
  node d2 5
  node j4 2
  node snk 1
  edge src f1
  edge src f3
  edge f1 a1
  edge f1 a2
  edge a1 j1
  edge a2 j1
  edge j1 f2
  edge f2 b1
  edge f2 b2
  edge b1 j2
  edge b2 j2
  edge f3 c1
  edge f3 c2
  edge c1 j3
  edge c2 j3
  edge j3 f4
  edge f4 d1
  edge f4 d2
  edge d1 j4
  edge d2 j4
  edge j2 snk
  edge j4 snk
  blocking f1 j1
  blocking f2 j2
  blocking f3 j3
  blocking f4 j4
end
";

    #[test]
    fn spin_gate_rejects_an_m_the_suspend_gate_accepts() {
        // Suspend at m = 3: the exact antichain check (2 < 3) proves
        // deadlock-freedom, so the gate passes (RT102 floor exhaustion
        // stays a warning).
        let certified = Codegen::new("flip.rtp", 3)
            .certify_source("flip.rtp", CHAINED_REGIONS)
            .expect("the suspend gate accepts m = 3");
        assert_eq!(certified.backend, SyncBackend::Suspend);
        assert_eq!(certified.b_bar, 2);
        assert_eq!(certified.b_bar_delay, 3);
        assert!(
            certified.warnings.iter().any(|w| w.contains("RT102")),
            "{:?}",
            certified.warnings
        );

        // Spin: same workload, same m — the busy-wait floor is
        // b\u{304}_delay + 1 = 4, so the very same build is rejected.
        let spin_src = format!("backend spin\n{CHAINED_REGIONS}");
        let err = Codegen::new("flip.rtp", 3)
            .certify_source("flip.rtp", spin_src.clone())
            .expect_err("the spin gate rejects m = 3");
        let rendered = err.to_string();
        assert!(rendered.contains("RT101"), "{rendered}");
        assert!(rendered.contains("spin backend"), "{rendered}");
        assert!(rendered.contains("suggested_m = 4"), "{rendered}");

        // One more worker meets the spin floor.
        let certified = Codegen::new("flip.rtp", 4)
            .certify_source("flip.rtp", spin_src)
            .expect("the spin gate accepts m = 4");
        assert!(certified.backend.is_spin());
        assert_eq!(certified.b_bar_delay, 3);
    }
}
