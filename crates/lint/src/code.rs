//! Stable rule codes and the rule registry.
//!
//! Codes are grouped in families, mirroring the sections of the paper:
//!
//! * **RT0xx** — parse and structural errors (the model restrictions of
//!   Section 2, surfaced from `graph::validate` and the `.rtp` parser);
//! * **RT1xx** — deadlock risk (Section 3, Lemmas 1–3 and the
//!   concurrency floor `l̄ = m − b̄`);
//! * **RT2xx** — schedulability smells (Section 4 preconditions:
//!   utilization, density, degenerate WCETs);
//! * **RT3xx** — partitioning and pool sizing (Algorithm 1 feasibility,
//!   reserve-worker sizing against a `PoolConfig`).
//!
//! Every [`GraphError`] and [`CoreError`] variant maps to exactly one
//! code ([`rule_for_graph_error`], [`rule_for_core_error`]); a proptest
//! in `tests/proptests.rs` enforces the bijection onto distinct codes.

use std::fmt;

use rtpool_core::textfmt::ParseTaskError;
use rtpool_core::CoreError;
use rtpool_graph::GraphError;

use crate::diag::Severity;

/// A stable diagnostic code, rendered as `RT` plus three digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleCode(pub u16);

impl RuleCode {
    /// Parses a code of the form `RT123` (case-insensitive prefix).
    #[must_use]
    pub fn parse(s: &str) -> Option<RuleCode> {
        let digits = s.strip_prefix("RT").or_else(|| s.strip_prefix("rt"))?;
        let n: u16 = digits.parse().ok()?;
        Some(RuleCode(n))
    }

    /// The registry entry for this code, if it is a known rule.
    #[must_use]
    pub fn info(&self) -> Option<&'static RuleInfo> {
        RULES.iter().find(|r| r.code == *self)
    }
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RT{:03}", self.0)
    }
}

// ---- RT0xx: parse / structural ------------------------------------------
/// Malformed directive or directive outside a `task … end` block.
pub const RT001: RuleCode = RuleCode(1);
/// A node name was referenced before being declared.
pub const RT002: RuleCode = RuleCode(2);
/// A node name was declared twice within one task.
pub const RT003: RuleCode = RuleCode(3);
/// Unrecognized structural error (forward-compatibility fallback).
pub const RT009: RuleCode = RuleCode(9);
/// The task graph has no nodes.
pub const RT010: RuleCode = RuleCode(10);
/// An edge endpoint does not belong to the graph.
pub const RT011: RuleCode = RuleCode(11);
/// A self-loop `v -> v`.
pub const RT012: RuleCode = RuleCode(12);
/// The same edge was declared twice.
pub const RT013: RuleCode = RuleCode(13);
/// The edge set contains a cycle.
pub const RT014: RuleCode = RuleCode(14);
/// More than one source node.
pub const RT015: RuleCode = RuleCode(15);
/// More than one sink node.
pub const RT016: RuleCode = RuleCode(16);
/// A blocking pair whose fork does not reach its join.
pub const RT017: RuleCode = RuleCode(17);
/// A node participates in more than one blocking pair.
pub const RT018: RuleCode = RuleCode(18);
/// Restriction (i): an inner node has an edge crossing its region.
pub const RT019: RuleCode = RuleCode(19);
/// Restriction (ii): an edge leaving the fork ends outside the region.
pub const RT020: RuleCode = RuleCode(20);
/// Restriction (iii): an edge entering the join starts outside.
pub const RT021: RuleCode = RuleCode(21);
/// Two blocking regions are nested.
pub const RT022: RuleCode = RuleCode(22);
/// The source or sink node is typed `BF`/`BJ`/`BC`.
pub const RT023: RuleCode = RuleCode(23);
/// The task period is zero.
pub const RT030: RuleCode = RuleCode(30);
/// The task deadline is zero.
pub const RT031: RuleCode = RuleCode(31);
/// Unrecognized model error (forward-compatibility fallback).
pub const RT039: RuleCode = RuleCode(39);

// ---- RT1xx: deadlock risk ------------------------------------------------
/// The task can deadlock on the given pool (Lemmas 1–2).
pub const RT101: RuleCode = RuleCode(101);
/// `b̄ ≥ m`: the `l̄` certificate is inconclusive (exact check decides).
pub const RT102: RuleCode = RuleCode(102);
/// A blocking region is wider than the concurrency floor.
pub const RT103: RuleCode = RuleCode(103);
/// A load-balancing node placement violates Lemma 3.
pub const RT104: RuleCode = RuleCode(104);

// ---- RT2xx: schedulability smells ---------------------------------------
/// Total utilization exceeds the pool size.
pub const RT201: RuleCode = RuleCode(201);
/// A node has zero WCET.
pub const RT202: RuleCode = RuleCode(202);
/// The relative deadline exceeds the period (unconstrained deadline).
pub const RT203: RuleCode = RuleCode(203);
/// The critical path is longer than the deadline (density > 1).
pub const RT204: RuleCode = RuleCode(204);
/// The limited-concurrency RTA reports a deadline miss.
pub const RT205: RuleCode = RuleCode(205);

// ---- RT3xx: partitioning / sizing ---------------------------------------
/// Algorithm 1 cannot produce a delay-free mapping at this pool size.
pub const RT301: RuleCode = RuleCode(301);
/// The pool is smaller than the deadlock-free minimum and has no reserve.
pub const RT302: RuleCode = RuleCode(302);
/// The pool configuration can never run a job.
pub const RT303: RuleCode = RuleCode(303);
/// A node-to-thread mapping references a thread outside the pool.
pub const RT304: RuleCode = RuleCode(304);
/// A node-to-thread mapping does not cover the graph.
pub const RT305: RuleCode = RuleCode(305);
/// The configured mapping admits a deadlock (Lemma 3).
pub const RT306: RuleCode = RuleCode(306);

/// Registry entry describing one rule.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// The stable code.
    pub code: RuleCode,
    /// Short kebab-case name.
    pub name: &'static str,
    /// Severity before `--allow` / `--deny` adjustments.
    pub default_severity: Severity,
    /// One-line description shown by `rtlint --rules`.
    pub summary: &'static str,
}

/// All registered rules in code order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: RT001,
        name: "syntax",
        default_severity: Severity::Error,
        summary: "malformed directive in a .rtp file",
    },
    RuleInfo {
        code: RT002,
        name: "unknown-name",
        default_severity: Severity::Error,
        summary: "reference to an undeclared node name",
    },
    RuleInfo {
        code: RT003,
        name: "duplicate-name",
        default_severity: Severity::Error,
        summary: "node name declared twice within one task",
    },
    RuleInfo {
        code: RT009,
        name: "unknown-structural",
        default_severity: Severity::Error,
        summary: "unrecognized structural error",
    },
    RuleInfo {
        code: RT010,
        name: "empty-graph",
        default_severity: Severity::Error,
        summary: "task graph has no nodes",
    },
    RuleInfo {
        code: RT011,
        name: "unknown-node",
        default_severity: Severity::Error,
        summary: "edge endpoint outside the graph",
    },
    RuleInfo {
        code: RT012,
        name: "self-loop",
        default_severity: Severity::Error,
        summary: "self-loop edge v -> v",
    },
    RuleInfo {
        code: RT013,
        name: "duplicate-edge",
        default_severity: Severity::Error,
        summary: "edge declared twice",
    },
    RuleInfo {
        code: RT014,
        name: "cycle",
        default_severity: Severity::Error,
        summary: "precedence constraints contain a cycle",
    },
    RuleInfo {
        code: RT015,
        name: "multiple-sources",
        default_severity: Severity::Error,
        summary: "more than one source node",
    },
    RuleInfo {
        code: RT016,
        name: "multiple-sinks",
        default_severity: Severity::Error,
        summary: "more than one sink node",
    },
    RuleInfo {
        code: RT017,
        name: "unreachable-join",
        default_severity: Severity::Error,
        summary: "blocking fork does not reach its join",
    },
    RuleInfo {
        code: RT018,
        name: "overlapping-regions",
        default_severity: Severity::Error,
        summary: "node in more than one blocking pair",
    },
    RuleInfo {
        code: RT019,
        name: "region-leak",
        default_severity: Severity::Error,
        summary: "edge crossing a blocking region boundary (restriction i)",
    },
    RuleInfo {
        code: RT020,
        name: "fork-escape",
        default_severity: Severity::Error,
        summary: "fork edge leaving its region (restriction ii)",
    },
    RuleInfo {
        code: RT021,
        name: "join-intrusion",
        default_severity: Severity::Error,
        summary: "external edge into a blocking join (restriction iii)",
    },
    RuleInfo {
        code: RT022,
        name: "nested-regions",
        default_severity: Severity::Error,
        summary: "nested blocking regions",
    },
    RuleInfo {
        code: RT023,
        name: "blocking-endpoint",
        default_severity: Severity::Warning,
        summary: "graph source/sink is blocking-typed (generation convention)",
    },
    RuleInfo {
        code: RT030,
        name: "zero-period",
        default_severity: Severity::Error,
        summary: "task period must be positive",
    },
    RuleInfo {
        code: RT031,
        name: "zero-deadline",
        default_severity: Severity::Error,
        summary: "task deadline must be positive",
    },
    RuleInfo {
        code: RT039,
        name: "unknown-model",
        default_severity: Severity::Error,
        summary: "unrecognized task-model error",
    },
    RuleInfo {
        code: RT101,
        name: "deadlock",
        default_severity: Severity::Error,
        summary: "task can deadlock: m blocking forks can suspend every worker (Lemma 1)",
    },
    RuleInfo {
        code: RT102,
        name: "floor-inconclusive",
        default_severity: Severity::Warning,
        summary: "b̄ ≥ m: the l̄ certificate cannot prove deadlock freedom",
    },
    RuleInfo {
        code: RT103,
        name: "region-wider-than-floor",
        default_severity: Severity::Warning,
        summary: "blocking region wider than the concurrency floor (children may serialize)",
    },
    RuleInfo {
        code: RT104,
        name: "naive-mapping-unsafe",
        default_severity: Severity::Info,
        summary: "load-balancing placement violates Lemma 3; Algorithm 1 is required",
    },
    RuleInfo {
        code: RT201,
        name: "overutilized",
        default_severity: Severity::Error,
        summary: "total utilization exceeds the pool size",
    },
    RuleInfo {
        code: RT202,
        name: "zero-wcet",
        default_severity: Severity::Warning,
        summary: "node with zero WCET",
    },
    RuleInfo {
        code: RT203,
        name: "unconstrained-deadline",
        default_severity: Severity::Error,
        summary: "relative deadline exceeds the period",
    },
    RuleInfo {
        code: RT204,
        name: "path-exceeds-deadline",
        default_severity: Severity::Error,
        summary: "critical path longer than the deadline (density > 1)",
    },
    RuleInfo {
        code: RT205,
        name: "unschedulable",
        default_severity: Severity::Warning,
        summary: "limited-concurrency RTA reports a deadline miss",
    },
    RuleInfo {
        code: RT301,
        name: "partition-infeasible",
        default_severity: Severity::Warning,
        summary: "Algorithm 1 cannot find a delay-free mapping",
    },
    RuleInfo {
        code: RT302,
        name: "pool-undersized",
        default_severity: Severity::Warning,
        summary: "pool below the deadlock-free minimum without a growth reserve",
    },
    RuleInfo {
        code: RT303,
        name: "invalid-pool-config",
        default_severity: Severity::Error,
        summary: "pool configuration can never run a job",
    },
    RuleInfo {
        code: RT304,
        name: "thread-out-of-range",
        default_severity: Severity::Error,
        summary: "mapping references a thread outside the pool",
    },
    RuleInfo {
        code: RT305,
        name: "incomplete-mapping",
        default_severity: Severity::Error,
        summary: "mapping does not cover every node",
    },
    RuleInfo {
        code: RT306,
        name: "mapping-deadlock",
        default_severity: Severity::Error,
        summary: "configured mapping admits a deadlock (Lemma 3)",
    },
];

/// The rule code for a structural graph error.
///
/// Total and deterministic: unknown future variants fall back to
/// [`RT009`].
#[must_use]
pub fn rule_for_graph_error(e: &GraphError) -> RuleCode {
    match e {
        GraphError::Empty => RT010,
        GraphError::UnknownNode(_) => RT011,
        GraphError::SelfLoop(_) => RT012,
        GraphError::DuplicateEdge(_, _) => RT013,
        GraphError::Cycle(_) => RT014,
        GraphError::MultipleSources(_) => RT015,
        GraphError::MultipleSinks(_) => RT016,
        GraphError::UnreachableJoin { .. } => RT017,
        GraphError::OverlappingPairs(_) => RT018,
        GraphError::RegionLeak { .. } => RT019,
        GraphError::ForkEscape { .. } => RT020,
        GraphError::JoinIntrusion { .. } => RT021,
        GraphError::NestedRegions { .. } => RT022,
        GraphError::BlockingEndpoint(_) => RT023,
        _ => RT009,
    }
}

/// The rule code for a task-model error.
///
/// Total and deterministic: unknown future variants fall back to
/// [`RT039`].
#[must_use]
pub fn rule_for_core_error(e: &CoreError) -> RuleCode {
    match e {
        CoreError::ZeroPeriod => RT030,
        CoreError::ZeroDeadline => RT031,
        CoreError::DeadlineExceedsPeriod { .. } => RT203,
        CoreError::ThreadOutOfRange { .. } => RT304,
        CoreError::IncompleteMapping => RT305,
        _ => RT039,
    }
}

/// The rule code for a `.rtp` parse error, delegating to the graph /
/// model mappings for wrapped sources.
#[must_use]
pub fn rule_for_parse_error(e: &ParseTaskError) -> RuleCode {
    match e {
        ParseTaskError::Syntax { .. } => RT001,
        ParseTaskError::UnknownName { .. } => RT002,
        ParseTaskError::DuplicateName { .. } => RT003,
        ParseTaskError::Graph { source, .. } => rule_for_graph_error(source),
        ParseTaskError::Timing { source, .. } => rule_for_core_error(source),
        _ => RT001,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_render_and_parse() {
        assert_eq!(RT101.to_string(), "RT101");
        assert_eq!(RT009.to_string(), "RT009");
        assert_eq!(RuleCode::parse("RT101"), Some(RT101));
        assert_eq!(RuleCode::parse("rt009"), Some(RT009));
        assert_eq!(RuleCode::parse("X1"), None);
        assert_eq!(RuleCode::parse("RTx"), None);
    }

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in RULES.windows(2) {
            assert!(
                pair[0].code < pair[1].code,
                "{} vs {}",
                pair[0].code,
                pair[1].code
            );
        }
    }

    #[test]
    fn every_registered_code_resolves() {
        for r in RULES {
            assert_eq!(r.code.info().map(|i| i.name), Some(r.name));
        }
        assert!(RuleCode(999).info().is_none());
    }
}
