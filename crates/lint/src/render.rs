//! Rendering of lint reports: rustc-style human output and a stable
//! JSON encoding for CI consumers.

use std::fmt::Write as _;

use rtpool_core::textfmt::Span;

use crate::diag::{Diagnostic, LintReport};

/// Renders a report in rustc style.
///
/// When `source` is available, primary spans are rendered as labeled
/// source snippets with a line-number gutter; without it, diagnostics
/// degrade to headers plus notes (spans are still printed in the
/// `--> file:line:col` line).
#[must_use]
pub fn render_human(report: &LintReport, source: Option<&str>) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        render_diagnostic(&mut out, report.file.as_deref(), d, source);
    }
    out
}

fn render_diagnostic(out: &mut String, file: Option<&str>, d: &Diagnostic, source: Option<&str>) {
    let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
    let gutter = gutter_width(d);
    if let Some(span) = d.span {
        let _ = writeln!(
            out,
            "{:gutter$}--> {}:{}:{}",
            "",
            file.unwrap_or("<task-set>"),
            span.line,
            span.col
        );
        if let Some(src) = source {
            let _ = writeln!(out, "{:gutter$} |", "");
            render_snippet(out, gutter, span, src, '^', None);
        }
    }
    if let Some(src) = source {
        let mut labels: Vec<_> = d.labels.iter().collect();
        labels.sort_by_key(|l| (l.span.line, l.span.col));
        for label in labels {
            let _ = writeln!(out, "{:gutter$} |", "");
            render_snippet(out, gutter, label.span, src, '-', Some(&label.message));
        }
    }
    for note in &d.notes {
        let _ = writeln!(out, "{:gutter$} = note: {}", "", note);
    }
    if let Some(help) = &d.suggestion {
        let _ = writeln!(out, "{:gutter$} = help: {}", "", help);
    }
    out.push('\n');
}

/// Width of the line-number gutter: widest line number among the spans
/// that will be shown.
fn gutter_width(d: &Diagnostic) -> usize {
    d.span
        .iter()
        .chain(d.labels.iter().map(|l| &l.span))
        .map(|s| s.line.to_string().len())
        .max()
        .unwrap_or(1)
}

/// One `NN | text` snippet line plus its underline.
fn render_snippet(
    out: &mut String,
    gutter: usize,
    span: Span,
    source: &str,
    mark: char,
    message: Option<&str>,
) {
    let Some(text) = source.lines().nth(span.line.saturating_sub(1)) else {
        return;
    };
    let _ = writeln!(out, "{:>gutter$} | {}", span.line, text.trim_end());
    let pad: String = text
        .chars()
        .take(span.col.saturating_sub(1))
        .map(|c| if c == '\t' { '\t' } else { ' ' })
        .collect();
    let underline: String = std::iter::repeat_n(mark, span.len.max(1)).collect();
    let _ = write!(out, "{:gutter$} | {pad}{underline}", "");
    if let Some(msg) = message {
        let _ = write!(out, " {msg}");
    }
    out.push('\n');
}

/// Renders a report as one JSON object (a single line — reports over
/// several files concatenate to JSON Lines).
///
/// The shape is stable for CI consumers:
///
/// ```json
/// {"file": "...", "diagnostics": [{"code": "RT101", "severity": "error",
///  "message": "...", "span": {"line": 9, "col": 1, "len": 28},
///  "labels": [...], "notes": [...], "suggestion": "..."}],
///  "summary": {"errors": 1, "warnings": 0, "infos": 0}}
/// ```
#[must_use]
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::from("{");
    match &report.file {
        Some(f) => {
            let _ = write!(out, "\"file\":\"{}\"", esc(f));
        }
        None => out.push_str("\"file\":null"),
    }
    out.push_str(",\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_diagnostic(&mut out, d);
    }
    let _ = write!(
        out,
        "],\"summary\":{{\"errors\":{},\"warnings\":{},\"infos\":{}}}}}",
        report.errors(),
        report.warnings(),
        report.infos()
    );
    out
}

fn json_diagnostic(out: &mut String, d: &Diagnostic) {
    let _ = write!(
        out,
        "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"span\":",
        d.code,
        d.severity,
        esc(&d.message)
    );
    json_span(out, d.span);
    out.push_str(",\"labels\":[");
    for (i, l) in d.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"span\":");
        json_span(out, Some(l.span));
        let _ = write!(out, ",\"message\":\"{}\"}}", esc(&l.message));
    }
    out.push_str("],\"notes\":[");
    for (i, n) in d.notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", esc(n));
    }
    out.push_str("],\"suggestion\":");
    match &d.suggestion {
        Some(s) => {
            let _ = write!(out, "\"{}\"", esc(s));
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"fix\":");
    match &d.fix {
        Some(fix) => json_fix(out, fix),
        None => out.push_str("null"),
    }
    out.push('}');
}

/// The machine-applicable payload: `data` as an object in emission
/// order, `edits` as span/replacement pairs.
fn json_fix(out: &mut String, fix: &crate::diag::Fix) {
    let _ = write!(out, "{{\"message\":\"{}\",\"data\":{{", esc(&fix.message));
    for (i, (key, value)) in fix.data.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", esc(key), value);
    }
    out.push_str("},\"edits\":[");
    for (i, e) in fix.edits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"span\":");
        json_span(out, Some(e.span));
        let _ = write!(out, ",\"replacement\":\"{}\"}}", esc(&e.replacement));
    }
    out.push_str("]}");
}

fn json_span(out: &mut String, span: Option<Span>) {
    match span {
        Some(s) => {
            let _ = write!(
                out,
                "{{\"line\":{},\"col\":{},\"len\":{}}}",
                s.line, s.col, s.len
            );
        }
        None => out.push_str("null"),
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{RT101, RT202};
    use crate::diag::Severity;

    fn sample_report() -> (LintReport, &'static str) {
        let source = "task period=400 deadline=400\n  node f1 1\n  blocking f1 j1\n";
        let report = LintReport {
            file: Some("demo.rtp".into()),
            diagnostics: vec![
                Diagnostic::new(RT101, Severity::Error, "task \u{3c4}0 can deadlock")
                    .with_span(Span::new(1, 1, 28))
                    .with_label(Span::new(3, 3, 14), "this fork suspends a worker")
                    .with_note("floor is 0")
                    .with_suggestion("use m >= 3"),
                Diagnostic::new(RT202, Severity::Warning, "zero \"WCET\""),
            ],
        };
        (report, source)
    }

    #[test]
    fn human_rendering_shows_snippets_and_notes() {
        let (report, source) = sample_report();
        let text = render_human(&report, Some(source));
        assert!(text.contains("error[RT101]: task \u{3c4}0 can deadlock"));
        assert!(text.contains("--> demo.rtp:1:1"));
        assert!(text.contains("1 | task period=400 deadline=400"));
        assert!(text.contains("  | ^^^^^^^^^^^^^^^^^^^^^^^^^^^^"));
        assert!(text.contains("3 |   blocking f1 j1"));
        assert!(text.contains("-------------- this fork suspends a worker"));
        assert!(text.contains("= note: floor is 0"));
        assert!(text.contains("= help: use m >= 3"));
        assert!(text.contains("warning[RT202]"));
    }

    #[test]
    fn human_rendering_degrades_without_source() {
        let (report, _) = sample_report();
        let text = render_human(&report, None);
        assert!(text.contains("--> demo.rtp:1:1"));
        assert!(!text.contains("task period=400"));
        assert!(text.contains("= note: floor is 0"));
    }

    #[test]
    fn json_is_single_line_and_escaped() {
        let (report, _) = sample_report();
        let json = render_json(&report);
        assert_eq!(json.lines().count(), 1);
        assert!(json.starts_with("{\"file\":\"demo.rtp\",\"diagnostics\":["));
        assert!(json.contains("\"code\":\"RT101\""));
        assert!(json.contains("\"span\":{\"line\":1,\"col\":1,\"len\":28}"));
        assert!(json.contains("\"message\":\"zero \\\"WCET\\\"\""));
        assert!(json.contains("\"span\":null"));
        assert!(json.ends_with("\"summary\":{\"errors\":1,\"warnings\":1,\"infos\":0}}"));
    }
}
