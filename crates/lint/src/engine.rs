//! The lint engine: runs the rule registry over `.rtp` sources,
//! in-memory task sets, and pool configurations.

use std::collections::BTreeSet;

use rtpool_core::analysis::global::{self, ConcurrencyModel};
use rtpool_core::analysis::{TaskVerdict, UnschedulableReason};
use rtpool_core::deadlock::{self, GlobalVerdict};
use rtpool_core::partition::{algorithm1_with, worst_fit, WorstFit};
use rtpool_core::textfmt::{
    parse_task_set_with_spans, ParseTaskError, SourceSpans, Span, TaskSpans,
};
use rtpool_core::{sizing, ConcurrencyAnalysis, SyncBackend, Task, TaskId, TaskSet};
use rtpool_exec::{PoolConfig, QueueDiscipline};
use rtpool_graph::{Dag, NodeId};

use crate::code::{self, RuleCode};
use crate::diag::{Diagnostic, Fix, LintReport, Severity};

/// Options of one lint run.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// The pool size `m` the deadlock / schedulability rules analyze
    /// against.
    pub m: usize,
    /// Codes to suppress entirely.
    pub allow: BTreeSet<RuleCode>,
    /// Codes to promote to [`Severity::Error`].
    pub deny: BTreeSet<RuleCode>,
    /// Promote every warning to an error (`--deny warnings`).
    pub deny_warnings: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            m: 4,
            allow: BTreeSet::new(),
            deny: BTreeSet::new(),
            deny_warnings: false,
        }
    }
}

impl LintOptions {
    /// Options analyzing against a pool of `m` workers.
    #[must_use]
    pub fn with_m(m: usize) -> Self {
        LintOptions {
            m,
            ..LintOptions::default()
        }
    }

    /// Applies the allow/deny policy to a finding: `None` when allowed
    /// away, otherwise the finding with its effective severity.
    fn admit(&self, mut d: Diagnostic) -> Option<Diagnostic> {
        if self.allow.contains(&d.code) {
            return None;
        }
        if self.deny.contains(&d.code) || (self.deny_warnings && d.severity == Severity::Warning) {
            d.severity = Severity::Error;
        }
        Some(d)
    }
}

/// Lints `.rtp` source text and returns the parsed set alongside the
/// report, so callers (the `analyze` CLI) do not parse twice.
///
/// The second component is `None` exactly when parsing failed; the
/// parse failure is then the report's single diagnostic.
#[must_use]
pub fn check_source(
    file: impl Into<String>,
    text: &str,
    opts: &LintOptions,
) -> (LintReport, Option<(TaskSet, SourceSpans)>) {
    let file = file.into();
    match parse_task_set_with_spans(text) {
        Err(e) => {
            let mut report = LintReport {
                file: Some(file),
                diagnostics: Vec::new(),
            };
            if let Some(d) = opts.admit(parse_diagnostic(&e)) {
                report.diagnostics.push(d);
            }
            (report, None)
        }
        Ok((set, spans)) => {
            let report = LintReport {
                file: Some(file),
                diagnostics: semantic_diagnostics(&set, Some(&spans), opts),
            };
            (report, Some((set, spans)))
        }
    }
}

/// Lints `.rtp` source text: parse diagnostics (RT0xx) when the text is
/// malformed, semantic rules (RT1xx–RT3xx) otherwise.
#[must_use]
pub fn lint_source(file: impl Into<String>, text: &str, opts: &LintOptions) -> LintReport {
    check_source(file, text, opts).0
}

/// Lints an in-memory task set (no source spans: diagnostics carry no
/// locations, only messages, notes, and suggestions).
#[must_use]
pub fn lint_task_set(set: &TaskSet, opts: &LintOptions) -> LintReport {
    LintReport {
        file: None,
        diagnostics: semantic_diagnostics(set, None, opts),
    }
}

/// Pre-run validation of a [`PoolConfig`] against the job it is about to
/// execute, as diagnostics: RT303 (unusable config), RT305/RT306
/// (partitioned-mapping coverage and Lemma 3), RT302 (pool below the
/// deadlock-free minimum without a sufficient growth reserve).
///
/// This is the entry point the executor-facing tooling routes pre-run
/// checks through; an empty vector means the configuration is safe for
/// `dag` as far as static analysis can tell.
#[must_use]
pub fn lint_config(config: &PoolConfig, dag: &Dag) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if let Err(e) = config.validate() {
        let suggested_workers = match &config.discipline {
            QueueDiscipline::Partitioned(mapping) => mapping.pool_size().max(1),
            _ => config.workers.max(1),
        };
        out.push(
            Diagnostic::new(code::RT303, Severity::Error, e.to_string())
                .with_note("ThreadPool::try_new rejects this configuration before any node runs")
                .with_fix(
                    Fix::new(format!("set PoolConfig.workers = {suggested_workers}"))
                        .with_data("suggested_workers", suggested_workers as u64),
                ),
        );
        return out;
    }
    let ca = ConcurrencyAnalysis::new(dag);
    if let QueueDiscipline::Partitioned(mapping) = &config.discipline {
        if mapping.node_count() != dag.node_count() {
            out.push(
                Diagnostic::new(
                    code::RT305,
                    Severity::Error,
                    format!(
                        "partitioned mapping covers {} nodes but the job graph has {}",
                        mapping.node_count(),
                        dag.node_count()
                    ),
                )
                .with_note("the pool rejects the job as incompatible before any node runs"),
            );
            return out;
        }
        let verdict = deadlock::check_partitioned(&ca, config.workers, mapping);
        if !verdict.is_deadlock_free() {
            out.push(
                Diagnostic::new(
                    code::RT306,
                    Severity::Error,
                    format!(
                        "the configured node-to-thread mapping admits a deadlock on {} workers (Lemma 3)",
                        config.workers
                    ),
                )
                .with_note(format!("verdict: {verdict:?}"))
                .with_suggestion(
                    "partition with Algorithm 1 (partition::algorithm1), which is delay-free by construction",
                ),
            );
        }
    }
    let min_safe = sizing::min_threads_deadlock_free(dag);
    let reserve = sizing::reserve_for(dag, config.workers);
    if reserve > 0 && config.recovery.growth_reserve() < reserve {
        let suspended = ca.max_suspended_forks().len();
        out.push(
            Diagnostic::new(
                code::RT302,
                Severity::Warning,
                format!(
                    "pool of {} workers is below the deadlock-free minimum of {min_safe} for this graph",
                    config.workers
                ),
            )
            .with_note(format!(
                "{suspended} blocking forks can be suspended simultaneously (maximum antichain), \
                 eating every worker"
            ))
            .with_suggestion(format!(
                "configure RecoveryPolicy::GrowPool {{ reserve: {reserve} }}, or run on m >= {min_safe} workers"
            ))
            .with_fix(
                Fix::new(format!(
                    "set PoolConfig.recovery = GrowPool {{ reserve: {reserve} }} or PoolConfig.workers = {min_safe}"
                ))
                .with_data("suggested_reserve", reserve as u64)
                .with_data("suggested_workers", min_safe as u64),
            ),
        );
    }
    out
}

/// Renders a parse failure as a diagnostic (RT0xx family).
fn parse_diagnostic(e: &ParseTaskError) -> Diagnostic {
    let code = code::rule_for_parse_error(e);
    let message = match e {
        ParseTaskError::Syntax { message, .. } => message.clone(),
        ParseTaskError::UnknownName { name, .. } => format!("unknown node name `{name}`"),
        ParseTaskError::DuplicateName { name, .. } => {
            format!("node name `{name}` declared twice")
        }
        ParseTaskError::Graph { source, .. } => format!("invalid task graph: {source}"),
        ParseTaskError::Timing { source, .. } => format!("invalid timing parameters: {source}"),
        other => other.to_string(),
    };
    let mut d = Diagnostic::new(code, Severity::Error, message).with_span(e.span());
    if let ParseTaskError::Graph { source, .. } = e {
        d = d.with_note(
            "the DAC 2019 model restricts task graphs to single-source, single-sink DAGs \
             with non-crossing blocking regions (Section 2)",
        );
        let _ = source; // the message already embeds the witness nodes
    }
    d
}

/// Runs every semantic rule over the set.
fn semantic_diagnostics(
    set: &TaskSet,
    spans: Option<&SourceSpans>,
    opts: &LintOptions,
) -> Vec<Diagnostic> {
    let m = opts.m.max(1);
    let mut out = Vec::new();
    let emit = |d: Diagnostic, out: &mut Vec<Diagnostic>| {
        if let Some(d) = opts.admit(d) {
            out.push(d);
        }
    };

    for (id, task) in set.iter() {
        let t_spans = spans.map(|s| s.task(id));
        let ca = ConcurrencyAnalysis::new(task.dag());
        for d in deadlock_rules(id, task, &ca, m, set.backend(), t_spans) {
            emit(d, &mut out);
        }
        for d in structure_rules(id, task, t_spans) {
            emit(d, &mut out);
        }
        for d in partition_rules(id, &ca, m, t_spans) {
            emit(d, &mut out);
        }
    }
    for d in set_rules(set, m, spans) {
        emit(d, &mut out);
    }
    out
}

/// RT101 / RT102 / RT103 / RT104: Section 3 deadlock analysis,
/// re-derived per sync backend.
///
/// Under [`SyncBackend::Spin`] two suspend-mode reliefs are *not*
/// available, so RT101 widens:
///
/// * the exact antichain certificate relies on suspended workers freeing
///   their cores for the remaining work — a spinner never does, so only
///   the `l\u{304} = m − b\u{304} ≥ 1` floor certifies a spin pool;
/// * a `GrowPool` rescue cannot resolve a spin stall — the spinners keep
///   their cores, so rescue workers have nowhere to run.
///
/// Consequently a floor-exhausted task (`b\u{304} >= m`) is an RT101
/// *error* under spin even when the antichain is smaller than `m`
/// (suspend mode keeps it an RT102 warning), and spin-mode RT101 never
/// suggests `GrowPool`.
fn deadlock_rules(
    id: TaskId,
    task: &Task,
    ca: &ConcurrencyAnalysis<'_>,
    m: usize,
    backend: SyncBackend,
    spans: Option<&TaskSpans>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let dag = task.dag();
    if ca.blocking_forks().is_empty() {
        return out;
    }
    let b_bar = ca.max_delay_count();
    let floor = ca.concurrency_lower_bound(m);
    match deadlock::check_global_with(ca, m) {
        GlobalVerdict::DeadlockPossible {
            suspended_antichain,
        } => {
            let (min_safe, verb) = if backend.is_spin() {
                (sizing::min_threads_spin(dag), "busy-wait on")
            } else {
                (sizing::min_threads_deadlock_free(dag), "suspend")
            };
            let mut d = Diagnostic::new(
                code::RT101,
                Severity::Error,
                format!(
                    "task {id} can deadlock on a pool of {m} workers ({} backend): {} blocking \
                     forks can {verb} every thread (Lemma 1)",
                    backend.as_str(),
                    suspended_antichain.len()
                ),
            );
            d = with_span(d, spans.map(TaskSpans::header));
            for &f in &suspended_antichain {
                if let Some(s) = spans.and_then(|t| t.blocking_decl(f).or_else(|| t.node(f))) {
                    d = d.with_label(s, "this fork's barrier can block a worker");
                }
            }
            d = d.with_note(format!(
                "concurrency floor l\u{304} = m \u{2212} b\u{304} = {m} \u{2212} {b_bar} = \
                 {floor}: no worker is guaranteed available while the barriers are pending \
                 (Section 3.1)"
            ));
            if backend.is_spin() {
                d = d
                    .with_note(
                        "a spin stall cannot be recovered by growing the pool: the spinning \
                         workers keep their cores, so rescue workers have nowhere to run",
                    )
                    .with_suggestion(format!(
                        "run on m >= {min_safe} workers (the smallest spin-certifiable pool for \
                         this task), or switch to the suspend backend"
                    ))
                    .with_fix(
                        Fix::new(format!("analyze and run with m = {min_safe}"))
                            .with_data("suggested_m", min_safe as u64),
                    );
            } else {
                let reserve = sizing::reserve_for(dag, m);
                d = d
                    .with_suggestion(format!(
                        "run on m >= {min_safe} workers (the smallest deadlock-free pool for \
                         this task), or configure RecoveryPolicy::GrowPool {{ reserve: {reserve} \
                         }} to recover at runtime"
                    ))
                    .with_fix(
                        Fix::new(format!("analyze and run with m = {min_safe}"))
                            .with_data("suggested_m", min_safe as u64)
                            .with_data("suggested_reserve", reserve as u64),
                    );
            }
            out.push(d);
        }
        GlobalVerdict::DeadlockFree { max_suspended, .. } => {
            if floor <= 0 && backend.is_spin() {
                // The antichain certificate does not transfer to spin:
                // this is a certification failure, not a proved deadlock.
                let min_safe = sizing::min_threads_spin(dag);
                let d = Diagnostic::new(
                    code::RT101,
                    Severity::Error,
                    format!(
                        "task {id} cannot be certified deadlock-free on {m} workers under the \
                         spin backend (b\u{304} = {b_bar} >= m = {m})"
                    ),
                )
                .with_note(format!(
                    "the exact antichain check (at most {max_suspended} simultaneously blocked \
                     workers) certifies the suspend backend only: it relies on suspended \
                     workers freeing their cores, which a spinner never does"
                ))
                .with_note(
                    "a spin stall cannot be recovered by growing the pool: the spinning \
                     workers keep their cores, so rescue workers have nowhere to run",
                )
                .with_suggestion(format!(
                    "run on m >= {min_safe} workers (l\u{304} >= 1 under the spin floor), or \
                     switch to the suspend backend"
                ))
                .with_fix(
                    Fix::new(format!("analyze and run with m = {min_safe}"))
                        .with_data("suggested_m", min_safe as u64),
                );
                out.push(with_span(d, spans.map(TaskSpans::header)));
            } else if floor <= 0 {
                let d = Diagnostic::new(
                    code::RT102,
                    Severity::Warning,
                    format!(
                        "the l\u{304} certificate cannot prove task {id} deadlock-free on {m} \
                         workers (b\u{304} = {b_bar} >= m = {m})"
                    ),
                )
                .with_note(format!(
                    "the exact antichain check certifies freedom: at most {max_suspended} of {m} \
                     workers can be suspended simultaneously"
                ))
                .with_note(
                    "the limited-concurrency schedulability test of Section 4.1 still rejects \
                     this task; consider more workers",
                );
                out.push(with_span(d, spans.map(TaskSpans::header)));
            }
            if floor > 0 {
                for region in dag.blocking_regions() {
                    let width = region.inner().len();
                    if width > floor as usize {
                        let fork = region.fork();
                        let d = Diagnostic::new(
                            code::RT103,
                            Severity::Warning,
                            format!(
                                "blocking region at `{}` of task {id} spawns {width} children \
                                 but only l\u{304} = {floor} workers are guaranteed available",
                                node_name(spans, fork)
                            ),
                        )
                        .with_note(
                            "children in excess of the floor serialize behind the suspended \
                             fork (the Figure 1(b) slowdown)",
                        );
                        out.push(with_span(
                            d,
                            spans.and_then(|t| t.blocking_decl(fork).or_else(|| t.node(fork))),
                        ));
                    }
                }
            }
            // RT104: a naive load-balancing placement deadlocks even
            // though the pool size is safe under global scheduling.
            if m >= 1 && algorithm1_with(ca, m, &mut WorstFit).is_ok() {
                let naive = worst_fit(dag, m);
                if !deadlock::check_partitioned(ca, m, &naive).is_deadlock_free() {
                    let d = Diagnostic::new(
                        code::RT104,
                        Severity::Info,
                        format!(
                            "a load-balancing (worst-fit) node placement of task {id} can \
                             deadlock under partitioned FIFO queues (Lemma 3)"
                        ),
                    )
                    .with_suggestion(
                        "partition with Algorithm 1 (PartitionStrategy::Algorithm1), which is \
                         delay-free by construction",
                    );
                    out.push(with_span(d, spans.map(TaskSpans::header)));
                }
            }
        }
    }
    out
}

/// RT023 / RT202 / RT204: per-task structural smells.
fn structure_rules(id: TaskId, task: &Task, spans: Option<&TaskSpans>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let dag = task.dag();
    // The model accepts blocking-typed endpoints (build() does not run
    // this check), but the paper's generation convention forbids them,
    // so the linter surfaces it as a warning.
    if let Err(e) = dag.validate_endpoints_non_blocking() {
        if let Some(&v) = e.nodes().first() {
            let d = Diagnostic::new(
                code::RT023,
                Severity::Warning,
                format!(
                    "the {} node `{}` of task {id} is part of a blocking region",
                    if v == dag.source() { "source" } else { "sink" },
                    node_name(spans, v)
                ),
            )
            .with_note(
                "the paper's generation convention keeps graph endpoints non-blocking (type \
                 NB); the analyses accept this graph, but generated workloads never look like it",
            );
            out.push(with_span(d, spans.and_then(|t| t.node(v))));
        }
    }
    for v in dag.node_ids() {
        if dag.wcet(v) == 0 {
            let mut fix =
                Fix::new("give the node a minimal one-unit WCET").with_data("suggested_wcet", 1);
            if let Some(span) = spans.and_then(|t| t.node(v)) {
                fix = fix.with_edit(span, format!("node {} 1", node_name(spans, v)));
            }
            let d = Diagnostic::new(
                code::RT202,
                Severity::Warning,
                format!("node `{}` of task {id} has zero WCET", node_name(spans, v)),
            )
            .with_note(
                "zero-WCET nodes contribute nothing to volume or critical path; if the node \
                 is structural only, this is fine",
            )
            .with_fix(fix);
            out.push(with_span(d, spans.and_then(|t| t.node(v))));
        }
    }
    if task.critical_path_length() > task.deadline() {
        // The smallest feasible header: D = len(τ), stretching T with it
        // when the critical path also exceeds the period (D ≤ T must keep
        // holding for the patched file to parse).
        let cp = task.critical_path_length();
        let period = task.period().max(cp);
        let mut fix = Fix::new(format!(
            "relax the deadline to the critical-path length {cp}"
        ))
        .with_data("suggested_deadline", cp)
        .with_data("suggested_period", period);
        if let Some(header) = spans.map(TaskSpans::header) {
            fix = fix.with_edit(header, format!("task period={period} deadline={cp}"));
        }
        let d = Diagnostic::new(
            code::RT204,
            Severity::Error,
            format!(
                "task {id} cannot meet its deadline: critical path {} exceeds deadline {}",
                task.critical_path_length(),
                task.deadline()
            ),
        )
        .with_note("no pool, however large, can shorten the critical path (density > 1)")
        .with_fix(fix);
        out.push(with_span(d, spans.map(TaskSpans::header)));
    }
    out
}

/// RT301: Algorithm 1 feasibility at the analyzed pool size.
fn partition_rules(
    id: TaskId,
    ca: &ConcurrencyAnalysis<'_>,
    m: usize,
    spans: Option<&TaskSpans>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ca.blocking_forks().is_empty() {
        return out;
    }
    if let Err(failure) = algorithm1_with(ca, m, &mut WorstFit) {
        let mut d = Diagnostic::new(
            code::RT301,
            Severity::Warning,
            format!("Algorithm 1 cannot partition task {id} onto {m} threads"),
        );
        d = with_span(d, spans.map(TaskSpans::header));
        if let Some(s) = spans.and_then(|t| t.node(failure.node)) {
            d = d.with_label(s, "no safe thread remains for this node");
        }
        d = d.with_note(format!("{failure}")).with_note(
            "the paper counts a task without a delay-free mapping as unschedulable under \
                 partitioned scheduling (Section 4.2)",
        );
        out.push(d);
    }
    out
}

/// RT201 / RT205: set-level schedulability smells.
fn set_rules(set: &TaskSet, m: usize, spans: Option<&SourceSpans>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if set.is_empty() {
        return out;
    }
    let total_u = set.total_utilization();
    if total_u > m as f64 {
        out.push(
            Diagnostic::new(
                code::RT201,
                Severity::Error,
                format!("total utilization {total_u:.3} exceeds the pool size m = {m}"),
            )
            .with_note("long-run demand exceeds capacity: backlog grows without bound"),
        );
    }
    let result = global::analyze(set, m, ConcurrencyModel::Limited);
    for (i, verdict) in result.verdicts().iter().enumerate() {
        let id = TaskId(i);
        let task = set.task(id);
        if task.critical_path_length() > task.deadline() {
            continue; // RT204 already explains this task.
        }
        if let TaskVerdict::Unschedulable {
            reason: UnschedulableReason::ResponseTimeExceedsDeadline { bound },
        } = verdict
        {
            let d = Diagnostic::new(
                code::RT205,
                Severity::Warning,
                format!(
                    "task {id} misses its deadline under the limited-concurrency RTA on {m} \
                     workers (bound {bound} > D = {})",
                    task.deadline()
                ),
            )
            .with_note(
                "Section 4.1 test: interference divided by l\u{304} = m \u{2212} b\u{304} \
                 instead of m",
            );
            out.push(with_span(d, spans.map(|s| s.task(id).header())));
        }
    }
    out
}

fn with_span(d: Diagnostic, span: Option<Span>) -> Diagnostic {
    match span {
        Some(s) => d.with_span(s),
        None => d,
    }
}

fn node_name(spans: Option<&TaskSpans>, v: NodeId) -> String {
    spans
        .and_then(|t| t.name(v))
        .map(str::to_owned)
        .unwrap_or_else(|| format!("v{}", v.index()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpool_exec::RecoveryPolicy;
    use rtpool_graph::DagBuilder;

    fn replicated(replicas: usize) -> Dag {
        let mut b = DagBuilder::new();
        let src = b.add_node(1);
        let snk = b.add_node(1);
        for _ in 0..replicas {
            let (f, j) = b.fork_join(1, &[1, 1], 1, true).unwrap();
            b.add_edge(src, f).unwrap();
            b.add_edge(j, snk).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn deadlock_rule_fires_on_figure_1c() {
        let set = TaskSet::new(vec![
            Task::with_implicit_deadline(replicated(2), 1_000).unwrap()
        ]);
        let report = lint_task_set(&set, &LintOptions::with_m(2));
        assert!(report.codes().contains(&code::RT101));
        assert!(report.has_failures());
        let d = &report.diagnostics[0];
        assert_eq!(d.code, code::RT101);
        assert!(d.suggestion.as_deref().unwrap().contains("m >= 3"));
        let fix = d.fix.as_ref().expect("RT101 carries a fix payload");
        assert!(fix.data.contains(&("suggested_m", 3)));
        assert!(fix.data.contains(&("suggested_reserve", 1)));
        assert!(fix.edits.is_empty(), "no source edit can fix pool sizing");
        // Safe pool: RT101 gone.
        let report = lint_task_set(&set, &LintOptions::with_m(3));
        assert!(!report.codes().contains(&code::RT101));
    }

    #[test]
    fn spin_backend_flips_floor_exhaustion_to_rt101() {
        // Two sequential blocking regions per branch, two branches:
        // antichain 2 < delay count 3. On 3 workers the suspend backend
        // warns (RT102, antichain certificate holds); spin errors
        // (RT101, no certificate transfers).
        let mut b = DagBuilder::new();
        let src = b.add_node(1);
        let snk = b.add_node(1);
        for _ in 0..2 {
            let (f1, j1) = b.fork_join(2, &[5, 5], 2, true).unwrap();
            let (f2, j2) = b.fork_join(2, &[5, 5], 2, true).unwrap();
            b.add_edge(src, f1).unwrap();
            b.add_edge(j1, f2).unwrap();
            b.add_edge(j2, snk).unwrap();
        }
        let task = Task::with_implicit_deadline(b.build().unwrap(), 10_000).unwrap();
        let suspend = TaskSet::new(vec![task.clone()]);
        let spin = TaskSet::new(vec![task]).with_backend(SyncBackend::Spin);

        let report = lint_task_set(&suspend, &LintOptions::with_m(3));
        assert!(report.codes().contains(&code::RT102));
        assert!(!report.codes().contains(&code::RT101));

        let report = lint_task_set(&spin, &LintOptions::with_m(3));
        assert!(report.codes().contains(&code::RT101));
        assert!(!report.codes().contains(&code::RT102));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == code::RT101)
            .unwrap();
        assert!(d.message.contains("spin backend"));
        assert!(d.suggestion.as_deref().unwrap().contains("m >= 4"));
        let fix = d.fix.as_ref().unwrap();
        assert!(fix.data.contains(&("suggested_m", 4)));
        // No GrowPool rescue exists for a spin stall.
        assert!(!fix.data.iter().any(|(k, _)| *k == "suggested_reserve"));

        // The spin floor satisfied: no RT101 either way.
        let report = lint_task_set(&spin, &LintOptions::with_m(4));
        assert!(!report.codes().contains(&code::RT101));
    }

    #[test]
    fn spin_backend_rt101_on_symmetric_deadlock_drops_growpool() {
        let set = TaskSet::new(vec![
            Task::with_implicit_deadline(replicated(2), 1_000).unwrap()
        ])
        .with_backend(SyncBackend::Spin);
        let report = lint_task_set(&set, &LintOptions::with_m(2));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == code::RT101)
            .expect("Lemma 1 deadlock fires under spin too");
        assert!(d.message.contains("spin backend"));
        assert!(d.message.contains("busy-wait"));
        assert!(!d.suggestion.as_deref().unwrap().contains("GrowPool"));
        assert!(!d
            .fix
            .as_ref()
            .unwrap()
            .data
            .iter()
            .any(|(k, _)| *k == "suggested_reserve"));
    }

    #[test]
    fn allow_suppresses_and_deny_promotes() {
        let set = TaskSet::new(vec![
            Task::with_implicit_deadline(replicated(2), 1_000).unwrap()
        ]);
        let mut opts = LintOptions::with_m(2);
        opts.allow.insert(code::RT101);
        opts.allow.insert(code::RT301);
        let report = lint_task_set(&set, &opts);
        assert!(!report.codes().contains(&code::RT101));
        assert!(!report.codes().contains(&code::RT301));

        // Deny a warning-level rule: it becomes an error.
        let mut opts = LintOptions::with_m(3);
        let before = lint_task_set(&set, &opts);
        if let Some(w) = before
            .diagnostics
            .iter()
            .find(|d| d.severity == Severity::Warning)
        {
            opts.deny.insert(w.code);
            let after = lint_task_set(&set, &opts);
            assert!(after
                .diagnostics
                .iter()
                .any(|d| d.code == w.code && d.severity == Severity::Error));
        }
    }

    #[test]
    fn deny_warnings_promotes_all_warnings() {
        let set = TaskSet::new(vec![
            Task::with_implicit_deadline(replicated(2), 1_000).unwrap()
        ]);
        let mut opts = LintOptions::with_m(3);
        opts.deny_warnings = true;
        let report = lint_task_set(&set, &opts);
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.severity != Severity::Warning));
    }

    #[test]
    fn source_lint_carries_spans() {
        let text = "task period=100\n  node a 1\n  node b 0\n  edge a b\nend\n";
        let report = lint_source("mem.rtp", text, &LintOptions::with_m(2));
        let zero = report
            .diagnostics
            .iter()
            .find(|d| d.code == code::RT202)
            .expect("zero-wcet warning");
        assert_eq!(zero.span.unwrap().line, 3);
    }

    #[test]
    fn parse_failure_is_reported_with_span() {
        let (report, parsed) = check_source(
            "bad.rtp",
            "task period=10\n  node a 1\n  edge a b\nend\n",
            &LintOptions::default(),
        );
        assert!(parsed.is_none());
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, code::RT002);
        assert_eq!(report.diagnostics[0].span.unwrap().line, 3);
    }

    #[test]
    fn lint_config_flags_undersized_pool_and_accepts_reserve() {
        let dag = replicated(2);
        let config = PoolConfig::new(2, QueueDiscipline::GlobalFifo);
        let diags = lint_config(&config, &dag);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, code::RT302);
        assert!(diags[0]
            .suggestion
            .as_deref()
            .unwrap()
            .contains("reserve: 1"));
        let fix = diags[0].fix.as_ref().expect("RT302 carries a fix payload");
        assert!(fix.data.contains(&("suggested_reserve", 1)));
        assert!(fix.data.contains(&("suggested_workers", 3)));
        // A sufficient growth reserve silences the finding.
        let config = config.with_recovery(RecoveryPolicy::GrowPool { reserve: 1 });
        assert!(lint_config(&config, &dag).is_empty());
        // So does a safe pool size.
        let config = PoolConfig::new(3, QueueDiscipline::GlobalFifo);
        assert!(lint_config(&config, &dag).is_empty());
    }

    #[test]
    fn lint_config_flags_invalid_and_unsafe_mappings() {
        let dag = replicated(1);
        let config = PoolConfig::new(0, QueueDiscipline::GlobalFifo);
        let diags = lint_config(&config, &dag);
        assert_eq!(diags[0].code, code::RT303);

        // All nodes on one thread of a two-thread pool: Lemma 3 violation.
        let mapping =
            rtpool_core::partition::NodeMapping::from_threads(&dag, 2, vec![0; dag.node_count()])
                .unwrap();
        let config = PoolConfig::new(2, QueueDiscipline::Partitioned(mapping));
        let codes: Vec<RuleCode> = lint_config(&config, &dag).iter().map(|d| d.code).collect();
        assert!(codes.contains(&code::RT306));
    }
}
