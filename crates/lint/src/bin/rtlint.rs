//! `rtlint` — static analysis for `.rtp` task-set workload files.
//!
//! ```text
//! rtlint [options] <file.rtp>...
//!
//! options:
//!   --m <N>             pool size to analyze against (default 4)
//!   --format <human|json>   output format (default human)
//!   --deny warnings     promote every warning to an error
//!   --deny <RTxxx>      promote one rule to an error (repeatable)
//!   --allow <RTxxx>     suppress one rule (repeatable)
//!   --fix-dry-run       print the source patched with machine-applicable
//!                       fixes to stdout (diagnostics go to stderr)
//!   --rules             list the rule registry and exit
//!   -h, --help          this help
//!
//! exit status: 0 clean, 1 findings of error severity, 2 usage or I/O error.
//! ```

use std::process::ExitCode;

use rtpool_lint::{
    apply_fixes, lint_source, render_human, render_json, LintOptions, RuleCode, RULES,
};

const USAGE: &str = "\
rtlint: span-aware static analysis for .rtp task-set workloads

usage: rtlint [options] <file.rtp>...

options:
  --m <N>               pool size m to analyze against (default 4)
  --format <human|json> output format; json emits one object per file
                        (JSON Lines), for CI consumption (default human)
  --deny warnings       promote every warning to an error
  --deny <RTxxx>        promote one rule to an error (repeatable)
  --allow <RTxxx>       suppress one rule (repeatable)
  --fix-dry-run         print each file patched with its machine-applicable
                        fixes to stdout; diagnostics move to stderr
  --rules               list the rule registry and exit
  -h, --help            show this help

exit status: 0 clean, 1 findings of error severity, 2 usage/IO error.";

enum Format {
    Human,
    Json,
}

struct Cli {
    opts: LintOptions,
    format: Format,
    fix_dry_run: bool,
    files: Vec<String>,
}

fn parse_code(arg: &str) -> Result<RuleCode, String> {
    RuleCode::parse(arg).ok_or_else(|| format!("rtlint: `{arg}` is not a rule code (RTxxx)"))
}

fn parse_cli(args: &[String]) -> Result<Option<Cli>, String> {
    let mut opts = LintOptions::default();
    let mut format = Format::Human;
    let mut fix_dry_run = false;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("rtlint: `{name}` needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--rules" => {
                for r in RULES {
                    println!(
                        "{} {:<22} {:<8} {}",
                        r.code, r.name, r.default_severity, r.summary
                    );
                }
                return Ok(None);
            }
            "--m" => {
                let v = value("--m")?;
                opts.m = v
                    .parse()
                    .ok()
                    .filter(|&m| m >= 1)
                    .ok_or_else(|| format!("rtlint: `--m {v}` is not a positive integer"))?;
            }
            "--format" => {
                format = match value("--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("rtlint: unknown format `{other}`")),
                };
            }
            "--fix-dry-run" => fix_dry_run = true,
            "--deny" => {
                let v = value("--deny")?;
                if v == "warnings" {
                    opts.deny_warnings = true;
                } else {
                    opts.deny.insert(parse_code(&v)?);
                }
            }
            "--allow" => {
                let v = value("--allow")?;
                opts.allow.insert(parse_code(&v)?);
            }
            other if other.starts_with('-') => {
                return Err(format!("rtlint: unknown option `{other}`\n\n{USAGE}"));
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        return Err(format!("rtlint: no input files\n\n{USAGE}"));
    }
    Ok(Some(Cli {
        opts,
        format,
        fix_dry_run,
        files,
    }))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut failed = false;
    let (mut errors, mut warnings) = (0usize, 0usize);
    for file in &cli.files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("rtlint: cannot read `{file}`: {e}");
                return ExitCode::from(2);
            }
        };
        let report = lint_source(file.clone(), &text, &cli.opts);
        failed |= report.has_failures();
        errors += report.errors();
        warnings += report.warnings();
        if cli.fix_dry_run {
            // Patched source on stdout, diagnostics on stderr, so the
            // output can be piped straight into a file or a diff.
            eprint!("{}", render_human(&report, Some(&text)));
            print!("{}", apply_fixes(&text, &report));
            continue;
        }
        match cli.format {
            Format::Human => print!("{}", render_human(&report, Some(&text))),
            Format::Json => println!("{}", render_json(&report)),
        }
    }
    if matches!(cli.format, Format::Human) && (errors > 0 || warnings > 0) {
        let plural = |n: usize| if n == 1 { "" } else { "s" };
        eprintln!(
            "rtlint: {errors} error{}, {warnings} warning{} across {} file{}",
            plural(errors),
            plural(warnings),
            cli.files.len(),
            plural(cli.files.len())
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
