//! The diagnostic data model: severities, labeled spans, and reports.

use std::fmt;

use rtpool_core::textfmt::Span;

use crate::code::RuleCode;

/// How serious a finding is, and whether it fails the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only; never affects the exit status.
    Info,
    /// A smell; fails the run only under `--deny warnings` (or a
    /// per-code `--deny`).
    Warning,
    /// A defect; always fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A secondary span with an explanatory message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Label {
    /// Location of the labeled source region.
    pub span: Span,
    /// Message attached to the region.
    pub message: String,
}

/// One span replacement of a machine-applicable fix: the `span.len`
/// characters starting at `span.line:span.col` are replaced by
/// `replacement` (columns count `char`s, like every [`Span`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixEdit {
    /// The source region to replace.
    pub span: Span,
    /// The replacement text (never contains a newline).
    pub replacement: String,
}

/// A machine-applicable fix attached to a diagnostic.
///
/// A fix carries two payload kinds, either of which may be empty:
///
/// * `data` — structured key/value suggestions that are *not* source
///   edits (e.g. `suggested_m` on RT101, `suggested_reserve` on RT302):
///   they describe the corrected analysis parameter or `PoolConfig`
///   field. CI consumers read them from the JSON rendering; the
///   `rtpool-codegen` build gate replays them as build-failure notes.
/// * `edits` — span replacements applicable to the `.rtp` source text
///   itself (e.g. the corrected `deadline=` header for RT204). `rtlint
///   --fix-dry-run` applies them and prints the patched file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fix {
    /// Human-readable summary of the fix.
    pub message: String,
    /// Structured non-edit payload values, in emission order.
    pub data: Vec<(&'static str, u64)>,
    /// Source edits, in document order, non-overlapping.
    pub edits: Vec<FixEdit>,
}

impl Fix {
    /// A fix with the given summary and no payloads yet.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Fix {
            message: message.into(),
            data: Vec::new(),
            edits: Vec::new(),
        }
    }

    /// Adds a structured payload value.
    #[must_use]
    pub fn with_data(mut self, key: &'static str, value: u64) -> Self {
        self.data.push((key, value));
        self
    }

    /// Adds a source edit.
    #[must_use]
    pub fn with_edit(mut self, span: Span, replacement: impl Into<String>) -> Self {
        self.edits.push(FixEdit {
            span,
            replacement: replacement.into(),
        });
        self
    }
}

/// One finding of the lint pass.
///
/// A diagnostic carries everything a renderer needs: the stable rule
/// code, severity, a one-line message, an optional primary span plus
/// secondary labels (for source-backed lints), free-form notes, and an
/// optional actionable suggestion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable rule code (`RT…`).
    pub code: RuleCode,
    /// Effective severity (after allow/deny adjustments).
    pub severity: Severity,
    /// One-line description of the finding.
    pub message: String,
    /// Primary location, when the finding is backed by source text.
    pub span: Option<Span>,
    /// Secondary locations with explanations.
    pub labels: Vec<Label>,
    /// Free-form notes (rendered as `= note: …`).
    pub notes: Vec<String>,
    /// Actionable fix suggestion (rendered as `= help: …`).
    pub suggestion: Option<String>,
    /// Machine-applicable fix payload (rendered only in JSON; see
    /// [`Fix`]).
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// A new diagnostic with the given code, severity, and message.
    #[must_use]
    pub fn new(code: RuleCode, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: None,
            labels: Vec::new(),
            notes: Vec::new(),
            suggestion: None,
            fix: None,
        }
    }

    /// Sets the primary span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Adds a secondary labeled span.
    #[must_use]
    pub fn with_label(mut self, span: Span, message: impl Into<String>) -> Self {
        self.labels.push(Label {
            span,
            message: message.into(),
        });
        self
    }

    /// Adds a note line.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Sets the fix suggestion.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Attaches a machine-applicable fix payload.
    #[must_use]
    pub fn with_fix(mut self, fix: Fix) -> Self {
        self.fix = Some(fix);
        self
    }
}

/// All findings of one lint run over one input.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Display name of the linted input (a path for files, `None` for
    /// in-memory task sets).
    pub file: Option<String>,
    /// The findings, in emission order (deterministic).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of info-severity findings.
    #[must_use]
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Returns `true` when no finding was emitted at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Returns `true` when the run should exit non-zero: any
    /// error-severity finding (denied warnings are already promoted to
    /// errors by the engine).
    #[must_use]
    pub fn has_failures(&self) -> bool {
        self.errors() > 0
    }

    /// All codes present in the report, deduplicated, in code order.
    #[must_use]
    pub fn codes(&self) -> Vec<RuleCode> {
        let mut codes: Vec<RuleCode> = self.diagnostics.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{RT101, RT202};

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn report_counters() {
        let mut r = LintReport::default();
        assert!(r.is_clean() && !r.has_failures());
        r.diagnostics
            .push(Diagnostic::new(RT202, Severity::Warning, "w"));
        assert!(!r.has_failures());
        r.diagnostics.push(
            Diagnostic::new(RT101, Severity::Error, "e")
                .with_span(Span::new(1, 1, 4))
                .with_label(Span::new(2, 1, 4), "here")
                .with_note("n")
                .with_suggestion("s"),
        );
        assert_eq!((r.errors(), r.warnings(), r.infos()), (1, 1, 0));
        assert!(r.has_failures());
        assert_eq!(r.codes(), vec![RT101, RT202]);
    }
}
