//! Applying machine-applicable fixes to `.rtp` source text.
//!
//! Only the [`Fix::edits`](crate::diag::Fix) payload is applicable to a
//! file; `data` payloads (corrected pool sizes, `PoolConfig` fields)
//! describe tool parameters and are surfaced as notes instead. `rtlint
//! --fix-dry-run` uses [`apply_fixes`] to print the patched file without
//! touching the original.

use crate::diag::{FixEdit, LintReport};

/// Applies every source edit of `report` to `source` and returns the
/// patched text.
///
/// Edits are applied line-locally in reverse document order so earlier
/// replacements never shift later spans. Overlapping edits (which the
/// engine does not emit) are resolved first-wins: an edit intersecting an
/// already-applied one is skipped. Columns and lengths count `char`s, in
/// agreement with [`Span`](rtpool_core::textfmt::Span).
#[must_use]
pub fn apply_fixes(source: &str, report: &LintReport) -> String {
    let mut edits: Vec<&FixEdit> = report
        .diagnostics
        .iter()
        .filter_map(|d| d.fix.as_ref())
        .flat_map(|f| f.edits.iter())
        .collect();
    edits.sort_by_key(|e| (e.span.line, e.span.col));

    let mut lines: Vec<Vec<char>> = source.lines().map(|l| l.chars().collect()).collect();
    // First pass, document order: drop out-of-range edits and resolve
    // overlaps first-wins, recording char ranges in original coordinates.
    let mut kept: Vec<(&FixEdit, usize, usize)> = Vec::new(); // (edit, start, end)
    for edit in edits {
        let span = edit.span;
        let Some(line) = span.line.checked_sub(1).and_then(|i| lines.get(i)) else {
            continue;
        };
        let start = span.col.saturating_sub(1);
        let end = (start + span.len.max(1)).min(line.len());
        if start >= line.len() {
            continue;
        }
        let overlaps = kept
            .iter()
            .any(|&(k, s, e)| k.span.line == span.line && start < e && s < end);
        if !overlaps {
            kept.push((edit, start, end));
        }
    }
    // Second pass, reverse document order, so earlier replacements never
    // shift the ranges of edits still to be applied.
    for &(edit, start, end) in kept.iter().rev() {
        let line = &mut lines[edit.span.line - 1];
        line.splice(start..end, edit.replacement.chars());
    }

    let mut out = String::with_capacity(source.len());
    for line in &lines {
        out.extend(line.iter());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::RT204;
    use crate::diag::{Diagnostic, Fix, Severity};
    use rtpool_core::textfmt::Span;

    fn report_with_edits(edits: Vec<(Span, &str)>) -> LintReport {
        let mut fix = Fix::new("patch");
        for (span, repl) in edits {
            fix = fix.with_edit(span, repl);
        }
        LintReport {
            file: Some("t.rtp".into()),
            diagnostics: vec![Diagnostic::new(RT204, Severity::Error, "x").with_fix(fix)],
        }
    }

    #[test]
    fn applies_single_edit() {
        let src = "task period=10 deadline=5\n  node a 7\nend\n";
        let report = report_with_edits(vec![(Span::new(1, 1, 25), "task period=10 deadline=7")]);
        assert_eq!(
            apply_fixes(src, &report),
            "task period=10 deadline=7\n  node a 7\nend\n"
        );
    }

    #[test]
    fn applies_multiple_edits_without_shifting() {
        let src = "node a 0\nnode b 0\n";
        let report = report_with_edits(vec![
            (Span::new(1, 1, 8), "node a 1"),
            (Span::new(2, 1, 8), "node b 1"),
        ]);
        assert_eq!(apply_fixes(src, &report), "node a 1\nnode b 1\n");
    }

    #[test]
    fn counts_chars_not_bytes() {
        // `bêta` is 4 chars / 5 bytes: a byte-based splice would cut the
        // line one position too far right.
        let src = "  node bêta 0\n";
        let report = report_with_edits(vec![(Span::new(1, 3, 11), "node bêta 1")]);
        assert_eq!(apply_fixes(src, &report), "  node bêta 1\n");
    }

    #[test]
    fn skips_overlapping_and_out_of_range_edits() {
        let src = "node a 0\n";
        let report = report_with_edits(vec![
            (Span::new(1, 1, 8), "node a 1"),
            (Span::new(1, 4, 3), "xxx"),  // overlaps the first edit
            (Span::new(9, 1, 1), "gone"), // line out of range
            (Span::new(1, 99, 1), "off"), // column out of range
        ]);
        assert_eq!(apply_fixes(src, &report), "node a 1\n");
    }
}
