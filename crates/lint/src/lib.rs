//! `rtpool-lint` — `rtlint`, a span-aware static-analysis pass for
//! task-set workloads.
//!
//! The linter runs a registry of rules derived from the paper's
//! analyses over `.rtp` workload files (or in-memory
//! [`TaskSet`](rtpool_core::TaskSet)s) and reports findings as
//! rustc-style diagnostics: a stable rule code, a severity, a primary
//! `file:line:col` span with a labeled source snippet, notes citing the
//! relevant lemma or section, and — where a fix exists — an actionable
//! suggestion (e.g. the smallest deadlock-free pool size).
//!
//! # Rule families
//!
//! | family  | source                | examples |
//! |---------|-----------------------|----------|
//! | `RT0xx` | parse / structural    | syntax errors, cycles, malformed blocking regions |
//! | `RT1xx` | deadlock risk         | Lemma 1 deadlock, `b̄ ≥ m`, region wider than the floor |
//! | `RT2xx` | schedulability smells | utilization > m, zero WCET, critical path > deadline |
//! | `RT3xx` | partitioning / sizing | Algorithm 1 infeasible, pool below the safe minimum |
//!
//! # Quick start
//!
//! ```
//! use rtpool_lint::{lint_source, LintOptions};
//!
//! let text = "\
//! task period=400 deadline=400
//!   node f 1
//!   node a 2
//!   node b 2
//!   node j 1
//!   edge f a
//!   edge f b
//!   edge a j
//!   edge b j
//!   blocking f j
//! end
//! ";
//! // One blocking fork: deadlocks alone on m = 1, safe on m = 2.
//! let report = lint_source("demo.rtp", text, &LintOptions::with_m(1));
//! assert!(report.has_failures());
//! assert_eq!(report.diagnostics[0].code, rtpool_lint::code::RT101);
//!
//! let report = lint_source("demo.rtp", text, &LintOptions::with_m(2));
//! assert!(!report.has_failures());
//! ```
//!
//! The `rtlint` binary wraps this library for the command line; see
//! `rtlint --help`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod code;
pub mod diag;
pub mod engine;
pub mod fixes;
pub mod render;

pub use code::{RuleCode, RuleInfo, RULES};
pub use diag::{Diagnostic, Fix, FixEdit, Label, LintReport, Severity};
pub use engine::{check_source, lint_config, lint_source, lint_task_set, LintOptions};
pub use fixes::apply_fixes;
pub use render::{render_human, render_json};
