//! Property-based tests for the lint crate: the error-to-rule-code
//! mapping is total and injective, and the engine agrees with the
//! underlying analyses on randomized task sets.

use proptest::prelude::*;
use rtpool_core::{deadlock, textfmt, ConcurrencyAnalysis, CoreError, Task, TaskSet};
use rtpool_graph::{Dag, DagBuilder, GraphError, NodeId};
use rtpool_lint::{code, lint_source, lint_task_set, render_json, LintOptions, RuleCode};

fn v(i: usize) -> NodeId {
    NodeId::from_index(i)
}

/// Every `GraphError` variant the graph crate ships today.
fn all_graph_errors() -> Vec<GraphError> {
    vec![
        GraphError::Empty,
        GraphError::UnknownNode(v(0)),
        GraphError::SelfLoop(v(0)),
        GraphError::DuplicateEdge(v(0), v(1)),
        GraphError::Cycle(v(0)),
        GraphError::MultipleSources(vec![v(0), v(1)]),
        GraphError::MultipleSinks(vec![v(0), v(1)]),
        GraphError::UnreachableJoin {
            fork: v(0),
            join: v(1),
        },
        GraphError::OverlappingPairs(v(0)),
        GraphError::RegionLeak {
            fork: v(0),
            inner: v(1),
            outside: v(2),
        },
        GraphError::ForkEscape {
            fork: v(0),
            outside: v(1),
        },
        GraphError::JoinIntrusion {
            join: v(0),
            outside: v(1),
        },
        GraphError::NestedRegions {
            outer_fork: v(0),
            inner_fork: v(1),
        },
        GraphError::BlockingEndpoint(v(0)),
    ]
}

/// Every `CoreError` variant the core crate ships today.
fn all_core_errors() -> Vec<CoreError> {
    vec![
        CoreError::ZeroPeriod,
        CoreError::ZeroDeadline,
        CoreError::DeadlineExceedsPeriod {
            deadline: 20,
            period: 10,
        },
        CoreError::ThreadOutOfRange {
            thread: 5,
            pool_size: 2,
        },
        CoreError::IncompleteMapping,
    ]
}

#[test]
fn graph_errors_map_to_distinct_registered_codes() {
    let errors = all_graph_errors();
    let codes: Vec<RuleCode> = errors.iter().map(code::rule_for_graph_error).collect();
    for (e, c) in errors.iter().zip(&codes) {
        assert_ne!(
            *c,
            code::RT009,
            "{e}: a shipped GraphError variant must not hit the fallback code"
        );
        assert!(c.info().is_some(), "{c} for {e} is not in the registry");
    }
    let mut unique = codes.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(
        unique.len(),
        codes.len(),
        "every GraphError variant maps to exactly one rule code"
    );
}

#[test]
fn core_errors_map_to_distinct_registered_codes() {
    let errors = all_core_errors();
    let codes: Vec<RuleCode> = errors.iter().map(code::rule_for_core_error).collect();
    for (e, c) in errors.iter().zip(&codes) {
        assert_ne!(
            *c,
            code::RT039,
            "{e}: a shipped CoreError variant must not hit the fallback code"
        );
        assert!(c.info().is_some(), "{c} for {e} is not in the registry");
    }
    let mut unique = codes.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(
        unique.len(),
        codes.len(),
        "every CoreError variant maps to exactly one rule code"
    );
}

#[test]
fn graph_and_core_codes_do_not_collide() {
    let mut codes: Vec<RuleCode> = all_graph_errors()
        .iter()
        .map(code::rule_for_graph_error)
        .chain(all_core_errors().iter().map(code::rule_for_core_error))
        .collect();
    let len = codes.len();
    codes.sort_unstable();
    codes.dedup();
    assert_eq!(codes.len(), len);
}

/// Deterministic pseudo-random fork-join task graph with optional
/// blocking regions (same shape as the core crate's proptests).
fn random_task_dag(seed: u64, max_regions: usize) -> Dag {
    let mut rng = seed | 1;
    let mut next = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng >> 33
    };
    let mut b = DagBuilder::new();
    let src = b.add_node(1 + next() % 50);
    let snk = b.add_node(1 + next() % 50);
    let regions = 1 + (next() as usize) % max_regions.max(1);
    for _ in 0..regions {
        let kids = 1 + (next() as usize) % 4;
        let wcets: Vec<u64> = (0..kids).map(|_| 1 + next() % 100).collect();
        let blocking = next() % 2 == 0;
        let (f, j) = b
            .fork_join(1 + next() % 50, &wcets, 1 + next() % 50, blocking)
            .unwrap();
        b.add_edge(src, f).unwrap();
        b.add_edge(j, snk).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    /// The engine's RT101 verdict coincides exactly with the deadlock
    /// analysis: fires iff `check_global_with` reports a possible
    /// deadlock, and is always accompanied by a fix suggestion.
    #[test]
    fn rt101_agrees_with_deadlock_analysis(
        seed in any::<u64>(), regions in 1usize..6, m in 1usize..8
    ) {
        let dag = random_task_dag(seed, regions);
        let deadlocks = {
            let ca = ConcurrencyAnalysis::new(&dag);
            !deadlock::check_global_with(&ca, m).is_deadlock_free()
        };
        let set = TaskSet::new(vec![Task::with_implicit_deadline(dag, 1_000_000).unwrap()]);
        let report = lint_task_set(&set, &LintOptions::with_m(m));
        let fired = report.codes().contains(&code::RT101);
        prop_assert_eq!(fired, deadlocks);
        if fired {
            let d = report.diagnostics.iter().find(|d| d.code == code::RT101).unwrap();
            prop_assert!(d.suggestion.is_some());
        }
    }

    /// Linting never panics, every emitted code is registered, and the
    /// JSON rendering stays single-line (the JSON-Lines contract).
    #[test]
    fn lint_is_total_and_json_is_one_line(
        seed in any::<u64>(), regions in 1usize..6, m in 1usize..8
    ) {
        let dag = random_task_dag(seed, regions);
        let set = TaskSet::new(vec![Task::with_implicit_deadline(dag, 1_000_000).unwrap()]);
        let report = lint_task_set(&set, &LintOptions::with_m(m));
        for d in &report.diagnostics {
            prop_assert!(d.code.info().is_some(), "unregistered code {} emitted", d.code);
        }
        prop_assert_eq!(render_json(&report).lines().count(), 1);
    }

    /// Round-trip: a random task set serialized to `.rtp` text and run
    /// through the source linter fires the same codes as the in-memory
    /// path, with a span on every finding.
    #[test]
    fn source_and_task_set_paths_agree(
        seed in any::<u64>(), regions in 1usize..5, m in 1usize..8
    ) {
        let dag = random_task_dag(seed, regions);
        let set = TaskSet::new(vec![Task::with_implicit_deadline(dag, 1_000_000).unwrap()]);
        let text = textfmt::write_task_set(&set);
        let opts = LintOptions::with_m(m);
        let from_source = lint_source("roundtrip.rtp", &text, &opts);
        let in_memory = lint_task_set(&set, &opts);
        prop_assert_eq!(from_source.codes(), in_memory.codes());
        for d in &from_source.diagnostics {
            prop_assert!(d.span.is_some(), "{}: source-backed finding lacks a span", d.code);
        }
    }
}
