//! Golden-file tests: every fixture under `tests/fixtures/` is linted
//! and its human and JSON renderings are compared byte-for-byte against
//! the checked-in `.human` / `.json` goldens.
//!
//! Each fixture's first line is a directive configuring the run and
//! naming the codes it must fire:
//!
//! ```text
//! # rtlint: m=2 expect=RT101,RT301 allow=RT104 deny=warnings
//! ```
//!
//! Re-bless after an intentional output change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p rtpool-lint --test golden
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use rtpool_lint::{lint_source, render_human, render_json, LintOptions, RuleCode};

/// Parses the `# rtlint: …` directive of a fixture.
fn parse_directive(text: &str) -> (LintOptions, Vec<RuleCode>) {
    let first = text.lines().next().unwrap_or_default();
    let directive = first
        .strip_prefix("# rtlint:")
        .unwrap_or_else(|| panic!("fixture must start with `# rtlint:`, got `{first}`"));
    let mut opts = LintOptions::default();
    let mut expect = Vec::new();
    for word in directive.split_whitespace() {
        let (key, value) = word
            .split_once('=')
            .unwrap_or_else(|| panic!("malformed directive word `{word}`"));
        match key {
            "m" => opts.m = value.parse().expect("m must be a number"),
            "expect" => {
                expect = value
                    .split(',')
                    .map(|c| RuleCode::parse(c).expect("bad expect code"))
                    .collect();
            }
            "allow" => {
                for c in value.split(',') {
                    opts.allow
                        .insert(RuleCode::parse(c).expect("bad allow code"));
                }
            }
            "deny" => {
                for c in value.split(',') {
                    if c == "warnings" {
                        opts.deny_warnings = true;
                    } else {
                        opts.deny.insert(RuleCode::parse(c).expect("bad deny code"));
                    }
                }
            }
            other => panic!("unknown directive key `{other}`"),
        }
    }
    assert!(!expect.is_empty(), "directive must name expected codes");
    (opts, expect)
}

fn check_golden(path: &Path, ext: &str, rendered: &str, bless: bool) {
    let golden = path.with_extension(ext);
    if bless {
        fs::write(&golden, rendered).expect("write golden");
        return;
    }
    let want = fs::read_to_string(&golden).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; bless with UPDATE_GOLDEN=1",
            golden.display()
        )
    });
    assert_eq!(
        rendered,
        want,
        "{} differs from its golden; bless intentional changes with UPDATE_GOLDEN=1",
        golden.display()
    );
}

#[test]
fn golden_fixtures() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let bless = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("fixtures directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rtp"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 25,
        "fixture corpus went missing: found only {}",
        fixtures.len()
    );

    for path in &fixtures {
        let text = fs::read_to_string(path).expect("read fixture");
        let (opts, expect) = parse_directive(&text);
        let name = path.file_name().unwrap().to_str().unwrap();
        let report = lint_source(name, &text, &opts);

        let codes = report.codes();
        for code in &expect {
            assert!(
                codes.contains(code),
                "{name}: expected {code} to fire, got {codes:?}"
            );
        }
        // Fixtures are minimal: nothing beyond the declared codes fires.
        assert_eq!(
            codes, expect,
            "{name}: exact code set mismatch (update the expect= directive?)"
        );

        check_golden(path, "human", &render_human(&report, Some(&text)), bless);
        check_golden(path, "json", &(render_json(&report) + "\n"), bless);
    }
}

#[test]
fn blessed_goldens_are_checked_in() {
    // Every fixture must have both goldens next to it, so a fresh clone
    // fails loudly if someone forgets to commit a blessed file.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for entry in fs::read_dir(&dir).expect("fixtures directory") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rtp") {
            for ext in ["human", "json"] {
                assert!(
                    path.with_extension(ext).exists(),
                    "{} lacks its .{ext} golden",
                    path.display()
                );
            }
        }
    }
}
