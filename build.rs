//! Build-time certification of the shipped workloads.
//!
//! Each `Codegen::compile` call runs the full `rtlint` pass over an
//! `.rtp` workload and either writes a typed module into `OUT_DIR`
//! (included by `examples/certified_pipeline.rs`,
//! `examples/fault_tolerance.rs`, and `tests/certified.rs`) or fails the
//! build with the rustc-style lint report. Lowering the `m` below the
//! workload's deadlock-free minimum — e.g. figure1 at m = 2 — makes
//! `cargo build` itself reject the program; `tests/compile-fail/`
//! pins that behavior.

use rtpool_codegen::Codegen;

fn main() {
    // The three-task sensor pipeline, certified at the CI gate's pool
    // size under the strictest policy (every warning is a build error).
    Codegen::new("workloads/pipeline.rtp", 6)
        .deny_warnings()
        .compile("certified_pipeline");

    // The paper's Figure 1 workload at the smallest deadlock-free pool:
    // b̄ = 2, so m = 3 certifies (and m = 2 would fail this very build).
    Codegen::new("workloads/figure1.rtp", 3).compile("certified_figure1");
}
