//! The paper's Figure 1 scenarios, cross-validated through all three
//! layers: static analysis (`rtpool-core`), deterministic simulation
//! (`rtpool-sim`), and real condition variables (`rtpool-exec`).

use rtpool::core::partition::{algorithm1, worst_fit};
use rtpool::core::{deadlock, ConcurrencyAnalysis, Task, TaskSet};
use rtpool::exec::{ExecError, PoolConfig, QueueDiscipline, ThreadPool};
use rtpool::graph::{Dag, DagBuilder};
use rtpool::sim::{SchedulingPolicy, SimConfig};

/// Figure 1(a): one blocking fork-join (v1 BF; v2..v4 BC; v5 BJ).
fn figure_1a() -> Dag {
    let mut b = DagBuilder::new();
    b.fork_join(10, &[20, 30, 20], 10, true).unwrap();
    b.build().unwrap()
}

/// Figure 1(c): two replicas of the fork-join behind a common source.
fn figure_1c() -> Dag {
    let mut b = DagBuilder::new();
    let src = b.add_node(1);
    let snk = b.add_node(1);
    for _ in 0..2 {
        let (f, j) = b.fork_join(10, &[5, 5, 5], 10, true).unwrap();
        b.add_edge(src, f).unwrap();
        b.add_edge(j, snk).unwrap();
    }
    b.build().unwrap()
}

fn single(dag: Dag) -> TaskSet {
    TaskSet::new(vec![Task::with_implicit_deadline(dag, 1_000_000).unwrap()])
}

#[test]
fn figure_1b_suspension_reduces_concurrency_in_all_layers() {
    let dag = figure_1a();
    let m = 3;
    // Analysis: one fork can suspend, so l >= m - 1 and no deadlock.
    let ca = ConcurrencyAnalysis::new(&dag);
    assert_eq!(ca.max_delay_count(), 1);
    assert!(deadlock::check_global_with(&ca, m).is_deadlock_free());
    // Simulation: the trace dips to exactly m - 1.
    let out = SimConfig::single_job(SchedulingPolicy::Global, m)
        .run(&single(dag.clone()))
        .unwrap();
    assert_eq!(out.task(0).min_available_concurrency, m - 1);
    assert!(out.task(0).stall.is_none());
    // Real pool: one worker observed suspended.
    let mut pool = ThreadPool::new(PoolConfig::new(m, QueueDiscipline::GlobalFifo));
    let report = pool.run(&dag).unwrap();
    assert_eq!(report.min_available_workers, m - 1);
    assert_eq!(report.executed_nodes, dag.node_count());
}

#[test]
fn figure_1c_deadlock_agrees_across_layers() {
    let dag = figure_1c();
    // Analysis predicts: deadlock possible on 2 threads, free on 3.
    assert!(!deadlock::check_global(&dag, 2).is_deadlock_free());
    assert!(deadlock::check_global(&dag, 3).is_deadlock_free());
    // Simulator confirms both.
    let stalled = SimConfig::single_job(SchedulingPolicy::Global, 2)
        .run(&single(dag.clone()))
        .unwrap();
    assert!(stalled.task(0).stall.is_some());
    assert_eq!(stalled.task(0).min_available_concurrency, 0);
    let fine = SimConfig::single_job(SchedulingPolicy::Global, 3)
        .run(&single(dag.clone()))
        .unwrap();
    assert!(fine.task(0).stall.is_none());
    // Real pool confirms both.
    let mut pool2 = ThreadPool::new(PoolConfig::new(2, QueueDiscipline::GlobalFifo));
    assert!(matches!(
        pool2.run(&dag),
        Err(ExecError::Stalled {
            suspended_workers: 2,
            ..
        })
    ));
    let mut pool3 = ThreadPool::new(PoolConfig::new(3, QueueDiscipline::GlobalFifo));
    assert_eq!(pool3.run(&dag).unwrap().executed_nodes, dag.node_count());
}

#[test]
fn lemma3_violation_stalls_partitioned_execution_everywhere() {
    let dag = figure_1a();
    let m = 2;
    // Map everything to thread 0: the children sit behind the suspended
    // fork (Lemma 3 violated).
    let bad =
        rtpool::core::partition::NodeMapping::from_threads(&dag, m, vec![0; dag.node_count()])
            .unwrap();
    let ca = ConcurrencyAnalysis::new(&dag);
    assert!(!deadlock::check_partitioned(&ca, m, &bad).is_deadlock_free());
    // Simulator stalls.
    let out = SimConfig::single_job(SchedulingPolicy::Partitioned, m)
        .with_mappings(vec![bad.clone()])
        .run(&single(dag.clone()))
        .unwrap();
    assert!(out.task(0).stall.is_some());
    // Real pool stalls.
    let mut pool = ThreadPool::new(PoolConfig::new(m, QueueDiscipline::Partitioned(bad)));
    assert!(matches!(pool.run(&dag), Err(ExecError::Stalled { .. })));
}

#[test]
fn algorithm1_mapping_rescues_partitioned_execution_everywhere() {
    let dag = figure_1a();
    let m = 2;
    let mapping = algorithm1(&dag, m).unwrap();
    let ca = ConcurrencyAnalysis::new(&dag);
    assert!(deadlock::check_partitioned(&ca, m, &mapping).is_deadlock_free());
    let out = SimConfig::single_job(SchedulingPolicy::Partitioned, m)
        .with_mappings(vec![mapping.clone()])
        .run(&single(dag.clone()))
        .unwrap();
    assert!(out.task(0).stall.is_none());
    assert_eq!(out.task(0).completed, 1);
    let mut pool = ThreadPool::new(PoolConfig::new(m, QueueDiscipline::Partitioned(mapping)));
    assert_eq!(pool.run(&dag).unwrap().executed_nodes, dag.node_count());
}

#[test]
fn worst_fit_on_figure_1c_is_the_papers_hazard() {
    // With m = 3 the task is globally safe, but a careless worst-fit
    // node placement can still deadlock partitioned execution.
    let dag = figure_1c();
    let m = 3;
    assert!(deadlock::check_global(&dag, m).is_deadlock_free());
    let wf = worst_fit(&dag, m);
    let ca = ConcurrencyAnalysis::new(&dag);
    let wf_safe = deadlock::check_partitioned(&ca, m, &wf).is_deadlock_free();
    let out = SimConfig::single_job(SchedulingPolicy::Partitioned, m)
        .with_mappings(vec![wf.clone()])
        .run(&single(dag.clone()))
        .unwrap();
    // The simulator may or may not hit the hazard for this concrete
    // interleaving, but it must never stall when Lemma 3 certifies the
    // mapping.
    if wf_safe {
        assert!(out.task(0).stall.is_none());
    }
    // Algorithm 1 is always safe here.
    let a1 = algorithm1(&dag, m).unwrap();
    let out = SimConfig::single_job(SchedulingPolicy::Partitioned, m)
        .with_mappings(vec![a1])
        .run(&single(dag))
        .unwrap();
    assert!(out.task(0).stall.is_none());
}
