//! Compile-fail suite for the `rtpool-codegen` build gate.
//!
//! Each fixture under `tests/compile-fail/` is an `.rtp` workload plus a
//! first-line `# codegen:` directive giving the gate's pool size and
//! deny policy; "building" a fixture means running the exact
//! certification step a `build.rs` runs, so a fixture that fails here
//! fails `cargo build` of any crate certifying it (see
//! `tests/compile-fail/bad_crate/` for the cargo-level twin, exercised
//! by CI). The failure text is pinned by a `.stderr` golden next to each
//! fixture — re-bless with `TRYBUILD=overwrite cargo test --test
//! codegen_gate`.
//!
//! Fixtures under `tests/compile-pass/` must certify cleanly.

use std::fs;
use std::path::Path;

use rtpool_codegen::{Codegen, CodegenError};
use trybuild::Outcome;

/// The `# codegen: m=N [deny_warnings] [deny=..] [allow=..] [expect=..]`
/// first-line directive of a fixture.
struct Directive {
    m: usize,
    deny_warnings: bool,
    deny: Vec<String>,
    allow: Vec<String>,
    expect: Vec<String>,
}

fn parse_directive(path: &Path, text: &str) -> Directive {
    let first = text.lines().next().unwrap_or_default();
    let body = first
        .strip_prefix("# codegen:")
        .unwrap_or_else(|| panic!("{}: missing `# codegen:` directive", path.display()));
    let mut d = Directive {
        m: 0,
        deny_warnings: false,
        deny: Vec::new(),
        allow: Vec::new(),
        expect: Vec::new(),
    };
    let csv = |v: &str| v.split(',').map(str::to_owned).collect::<Vec<_>>();
    for word in body.split_whitespace() {
        if let Some(m) = word.strip_prefix("m=") {
            d.m = m.parse().expect("m=<int>");
        } else if word == "deny_warnings" {
            d.deny_warnings = true;
        } else if let Some(v) = word.strip_prefix("deny=") {
            d.deny = csv(v);
        } else if let Some(v) = word.strip_prefix("allow=") {
            d.allow = csv(v);
        } else if let Some(v) = word.strip_prefix("expect=") {
            d.expect = csv(v);
        } else {
            panic!("{}: unknown directive word `{word}`", path.display());
        }
    }
    assert!(d.m > 0, "{}: directive must set m", path.display());
    d
}

/// Runs the gate over a fixture exactly as a `build.rs` would.
fn drive(path: &Path) -> Outcome {
    let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let d = parse_directive(path, &text);
    let mut gate = Codegen::new(path, d.m);
    if d.deny_warnings {
        gate = gate.deny_warnings();
    }
    for code in &d.deny {
        gate = gate.deny(code);
    }
    for code in &d.allow {
        gate = gate.allow(code);
    }
    // Certify from the in-memory text with the repo-relative path so the
    // rendered spans (and thus the .stderr goldens) are host-independent.
    match gate.certify_source(path.display().to_string(), text) {
        Ok(certified) => {
            // A passing fixture must also emit a loadable module; emission
            // itself must not panic.
            let module = rtpool_codegen::certified_module_source(&certified);
            assert!(
                module.contains("DeadlockFree"),
                "{}: emitted module misses the proof token",
                path.display()
            );
            Outcome::Pass
        }
        Err(e @ CodegenError::Rejected { .. }) => {
            let stderr = e.to_string();
            for code in &d.expect {
                assert!(
                    stderr.contains(code.as_str()),
                    "{}: expected {code} in the build failure, got:\n{stderr}",
                    path.display()
                );
            }
            Outcome::Fail(stderr)
        }
        Err(e) => panic!("{}: unexpected I/O failure: {e}", path.display()),
    }
}

#[test]
fn compile_fail_fixtures() {
    let mut t = trybuild::TestCases::new(drive);
    t.compile_fail("tests/compile-fail/*.rtp");
    t.run();
}

#[test]
fn compile_pass_fixtures() {
    let mut t = trybuild::TestCases::new(drive);
    t.pass("tests/compile-pass/*.rtp");
    t.run();
}

#[test]
fn fixture_floor() {
    let count = fs::read_dir("tests/compile-fail")
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "rtp"))
        .count();
    assert!(count >= 6, "compile-fail suite shrank to {count} fixtures");
}
