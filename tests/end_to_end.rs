//! End-to-end pipelines across the whole workspace: generate → analyze →
//! simulate → (spot-check) execute, asserting the safety relations the
//! paper's results rest on.

use rand::SeedableRng;
use rtpool::core::analysis::global::{self, ConcurrencyModel};
use rtpool::core::analysis::partitioned::{self, PartitionStrategy};
use rtpool::core::{deadlock, ConcurrencyAnalysis, TaskId};
use rtpool::gen::{BlockingPolicy, ConcurrencyWindow, DagGenConfig, TaskSetConfig};
use rtpool::sim::{SchedulingPolicy, SimConfig};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn generated_sets_analyze_and_simulate_consistently() {
    let m = 6;
    for seed in 0..30 {
        let set = TaskSetConfig::new(3, 0.3 * m as f64, DagGenConfig::default())
            .generate(&mut rng(seed))
            .unwrap();
        let result = global::analyze(&set, m, ConcurrencyModel::Limited);
        if !result.is_schedulable() {
            continue;
        }
        let horizon = set.iter().map(|(_, t)| t.period()).max().unwrap() * 2;
        let out = SimConfig::periodic(SchedulingPolicy::Global, m, horizon)
            .run(&set)
            .unwrap();
        assert!(!out.any_stall(), "seed {seed}: accepted set stalled");
        for (i, _) in set.iter().enumerate() {
            let bound = result.verdict(TaskId(i)).response_time().unwrap();
            if let Some(r) = out.task(i).max_response {
                assert!(r <= bound, "seed {seed}, task {i}: {r} > bound {bound}");
            }
            assert_eq!(out.task(i).deadline_misses, 0, "seed {seed}, task {i}");
        }
    }
}

#[test]
fn exact_concurrency_model_is_sound_against_simulation() {
    let m = 6;
    let mut accepted = 0;
    for seed in 100..160 {
        let set = TaskSetConfig::new(2, 0.3 * m as f64, DagGenConfig::default())
            .generate(&mut rng(seed))
            .unwrap();
        let result = global::analyze(&set, m, ConcurrencyModel::LimitedExact);
        if !result.is_schedulable() {
            continue;
        }
        accepted += 1;
        let horizon = set.iter().map(|(_, t)| t.period()).max().unwrap() * 2;
        let out = SimConfig::periodic(SchedulingPolicy::Global, m, horizon)
            .run(&set)
            .unwrap();
        assert!(!out.any_stall(), "seed {seed}");
        for (i, _) in set.iter().enumerate() {
            let bound = result.verdict(TaskId(i)).response_time().unwrap();
            if let Some(r) = out.task(i).max_response {
                assert!(r <= bound, "seed {seed}, task {i}: {r} > {bound}");
            }
        }
    }
    assert!(accepted > 0, "statistical test vacuous: nothing accepted");
}

#[test]
fn algorithm1_pipeline_simulates_cleanly() {
    let m = 5;
    let mut checked = 0;
    for seed in 200..240 {
        let set = TaskSetConfig::new(3, 0.25 * m as f64, DagGenConfig::default())
            .generate(&mut rng(seed))
            .unwrap();
        let (result, mappings) =
            partitioned::partition_and_analyze(&set, m, PartitionStrategy::Algorithm1);
        if !result.is_schedulable() {
            continue;
        }
        checked += 1;
        let maps: Vec<_> = mappings.into_iter().map(Option::unwrap).collect();
        // Every mapping is certified delay-free.
        for ((_, task), mapping) in set.iter().zip(&maps) {
            let ca = ConcurrencyAnalysis::new(task.dag());
            deadlock::check_mapping_delay_free(&ca, mapping).unwrap();
        }
        let horizon = set.iter().map(|(_, t)| t.period()).max().unwrap() * 2;
        let out = SimConfig::periodic(SchedulingPolicy::Partitioned, m, horizon)
            .with_mappings(maps)
            .run(&set)
            .unwrap();
        assert!(!out.any_stall(), "seed {seed}");
        for (i, _) in set.iter().enumerate() {
            let bound = result.verdict(TaskId(i)).response_time().unwrap();
            if let Some(r) = out.task(i).max_response {
                assert!(r <= bound, "seed {seed}, task {i}: {r} > {bound}");
            }
        }
    }
    assert!(checked > 0, "statistical test vacuous: nothing accepted");
}

#[test]
fn concurrency_window_controls_generated_floors() {
    for l_max in 2..=6 {
        let window = ConcurrencyWindow::around(8, l_max);
        let cfg = TaskSetConfig::new(
            2,
            2.0,
            DagGenConfig {
                blocking: BlockingPolicy::Fixed(0.5),
                ..DagGenConfig::default()
            },
        )
        .with_concurrency_window(window);
        let set = cfg.generate(&mut rng(l_max as u64)).unwrap();
        for (_, task) in set.iter() {
            let floor = ConcurrencyAnalysis::new(task.dag()).concurrency_lower_bound(8);
            assert!(
                window.contains(floor),
                "floor {floor} outside window around {l_max}"
            );
        }
    }
}

#[test]
fn oblivious_baseline_accepts_sets_that_stall() {
    // The core claim of the paper: the state-of-the-art partitioned
    // analysis can accept a set whose execution deadlocks. Find one
    // within a few seeds and demonstrate it in simulation.
    let m = 2;
    let mut demonstrated = false;
    for seed in 300..400 {
        let set = TaskSetConfig::new(1, 0.4, DagGenConfig::default())
            .generate(&mut rng(seed))
            .unwrap();
        let (result, mappings) =
            partitioned::partition_and_analyze(&set, m, PartitionStrategy::WorstFit);
        if !result.is_schedulable() {
            continue;
        }
        let maps: Vec<_> = mappings.into_iter().map(Option::unwrap).collect();
        let out = SimConfig::single_job(SchedulingPolicy::Partitioned, m)
            .with_mappings(maps)
            .run(&set)
            .unwrap();
        if out.any_stall() {
            demonstrated = true;
            break;
        }
    }
    assert!(
        demonstrated,
        "expected at least one accepted-but-stalling set in 100 seeds"
    );
}

#[test]
fn facade_reexports_work() {
    // The facade crate exposes all five sub-crates.
    let mut b = rtpool::graph::DagBuilder::new();
    b.add_node(1);
    let dag = b.build().unwrap();
    let _ = rtpool::core::ConcurrencyAnalysis::new(&dag);
    let _ = rtpool::gen::DagGenConfig::default();
    let _ = rtpool::sim::SimConfig::single_job(rtpool::sim::SchedulingPolicy::Global, 1);
    let _ = rtpool::exec::PoolConfig::new(1, rtpool::exec::QueueDiscipline::GlobalFifo);
}
