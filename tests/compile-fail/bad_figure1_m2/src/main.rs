//! Unreachable: build.rs fails the build before this compiles. Kept
//! honest anyway — were the gate to wrongly pass, this binary would run
//! the workload on the (deadlock-prone) 2-worker pool.

#[allow(dead_code)]
mod certified_figure1 {
    include!(concat!(env!("OUT_DIR"), "/certified_figure1.rs"));
}

fn main() {
    let mut pool = rtpool_exec::ThreadPool::new_static(&certified_figure1::CONFIG);
    for dag in certified_figure1::CONFIG.dags() {
        pool.run(&dag).expect("certified workload");
    }
}
