//! Certifies Figure 1 for m = 2 — an undersized pool. The gate rejects
//! it, so this crate never builds (which is the point: see the crate's
//! Cargo.toml and the CI codegen-gate job).

use rtpool_codegen::Codegen;

fn main() {
    Codegen::new("../../../workloads/figure1.rtp", 2).compile("certified_figure1");
}
