//! The workload files shipped in `workloads/` stay parseable and behave
//! as their comments promise.

use rtpool::core::analysis::global::{self, ConcurrencyModel};
use rtpool::core::{deadlock, textfmt, TaskId};
use rtpool::sim::{SchedulingPolicy, SimConfig};

const FIGURE1: &str = include_str!("../workloads/figure1.rtp");

#[test]
fn figure1_workload_parses() {
    let set = textfmt::parse_task_set(FIGURE1).unwrap();
    assert_eq!(set.len(), 2);
    let blocking_task = set.task(TaskId(0));
    assert_eq!(blocking_task.dag().blocking_regions().len(), 2);
    assert_eq!(set.task(TaskId(1)).dag().blocking_regions().len(), 0);
}

#[test]
fn figure1_workload_behaves_as_documented() {
    let set = textfmt::parse_task_set(FIGURE1).unwrap();
    let dag = set.task(TaskId(0)).dag();
    // The file promises: deadlock possible on m = 2, safe on m >= 3.
    assert!(!deadlock::check_global(dag, 2).is_deadlock_free());
    assert!(deadlock::check_global(dag, 3).is_deadlock_free());
    // And the oblivious analysis accepts the m = 2 configuration that
    // the simulator then deadlocks — the CLI's headline demo.
    assert!(global::analyze(&set, 2, ConcurrencyModel::Full).is_schedulable());
    let out = SimConfig::single_job(SchedulingPolicy::Global, 2)
        .run(&set)
        .unwrap();
    assert!(out.task(0).stall.is_some());
    // On m = 3 everything completes.
    let out = SimConfig::single_job(SchedulingPolicy::Global, 3)
        .run(&set)
        .unwrap();
    assert!(!out.any_stall());
    assert!(out.all_deadlines_met());
}

#[test]
fn figure1_workload_roundtrips() {
    let set = textfmt::parse_task_set(FIGURE1).unwrap();
    let back = textfmt::parse_task_set(&textfmt::write_task_set(&set)).unwrap();
    assert_eq!(back.len(), set.len());
    for ((_, a), (_, b)) in set.iter().zip(back.iter()) {
        assert_eq!(a.volume(), b.volume());
        assert_eq!(a.period(), b.period());
    }
}
