//! The certified construction path, end to end:
//!
//! * a golden test blessing the exact module `rtpool-codegen` emits for
//!   `workloads/figure1.rtp` at the smallest deadlock-free pool (m = 3) —
//!   re-bless with `UPDATE_GOLDEN=1 cargo test --test certified`;
//! * differential tests asserting the statically-generated tables are
//!   *behaviorally identical* to parsing the workload at runtime: same
//!   graphs (content hashes), bit-identical discrete-event simulation
//!   outcomes and traces, and equivalent executor runs between
//!   `ThreadPool::new_static` and the dynamic `ThreadPool::try_new`.

use std::fs;

use rtpool::core::textfmt::parse_task_set;
use rtpool::exec::ThreadPool;
use rtpool::sim::{SchedulingPolicy, SimConfig};
use rtpool_codegen::Codegen;

#[allow(dead_code)]
mod certified_figure1 {
    include!(concat!(env!("OUT_DIR"), "/certified_figure1.rs"));
}

const GOLDEN: &str = "tests/goldens/certified_figure1.rs";

#[test]
fn generated_module_matches_golden() {
    let module = Codegen::new("workloads/figure1.rtp", 3)
        .generate_string()
        .expect("figure1 certifies at m = 3");
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        fs::create_dir_all("tests/goldens").unwrap();
        fs::write(GOLDEN, &module).unwrap();
        return;
    }
    let golden = fs::read_to_string(GOLDEN)
        .expect("golden missing: bless with UPDATE_GOLDEN=1 cargo test --test certified");
    assert_eq!(
        module, golden,
        "generated module drifted from {GOLDEN}; re-bless if intended"
    );
}

#[test]
fn static_tables_reproduce_the_parsed_graphs() {
    let parsed = parse_task_set(&fs::read_to_string("workloads/figure1.rtp").unwrap()).unwrap();
    let statics = certified_figure1::CONFIG.task_set();
    assert_eq!(parsed.len(), statics.len());
    for ((_, a), (_, b)) in parsed.iter().zip(statics.iter()) {
        assert_eq!(a.period(), b.period());
        assert_eq!(a.deadline(), b.deadline());
        // Content hash covers node WCETs, edges, and blocking pairs.
        assert_eq!(a.dag().content_hash(), b.dag().content_hash());
    }
    assert!(certified_figure1::CONFIG.verify_tables().is_ok());
}

#[test]
fn static_and_parsed_sets_simulate_identically() {
    let parsed = parse_task_set(&fs::read_to_string("workloads/figure1.rtp").unwrap()).unwrap();
    let statics = certified_figure1::CONFIG.task_set();
    for m in [certified_figure1::M, certified_figure1::M + 2] {
        let sim = SimConfig::single_job(SchedulingPolicy::Global, m).with_event_trace();
        let a = sim.run(&parsed).unwrap();
        let b = sim.run(&statics).unwrap();
        // The simulator is deterministic, so "same workload" means
        // bit-identical outcomes including the full event traces.
        assert_eq!(a, b, "simulation diverged at m = {m}");
    }
}

#[test]
fn new_static_matches_dynamic_try_new() {
    let wl = &certified_figure1::CONFIG;
    let mut static_pool =
        ThreadPool::new_static_with(wl, |c| c.with_time_scale(std::time::Duration::ZERO));
    let mut dynamic_pool =
        ThreadPool::try_new(wl.pool_config().with_time_scale(std::time::Duration::ZERO))
            .expect("the certified config is valid for the dynamic path too");
    assert_eq!(static_pool.workers(), dynamic_pool.workers());

    for dag in wl.dags() {
        let a = static_pool.run(&dag).expect("certified run");
        let b = dynamic_pool.run(&dag).expect("dynamic run");
        // Real threads are not bit-deterministic; compare every
        // schedule-independent field of the reports.
        assert_eq!(a.executed_nodes, b.executed_nodes);
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.completion_order.len(), b.completion_order.len());
        {
            let mut x = a.completion_order.clone();
            let mut y = b.completion_order.clone();
            x.sort_unstable();
            y.sort_unstable();
            assert_eq!(x, y, "pools executed different node sets");
        }
        assert_eq!(a.recovery_events, b.recovery_events);
        // Both runs respect the certified concurrency floor.
        assert!(a.min_available_workers >= certified_figure1::L_BAR);
        assert!(b.min_available_workers >= certified_figure1::L_BAR);
    }
}

#[test]
fn new_static_runs_on_the_v2_engine() {
    use rtpool::exec::Engine;
    // The certificate pins the worker count and queue discipline — the
    // inputs of the Lemma 1 floor — but not the dispatch engine, so a
    // certified config may select `Engine::V2LockFree` freely.
    let wl = &certified_figure1::CONFIG;
    let mut pool = ThreadPool::new_static_with(wl, |c| {
        c.with_engine(Engine::V2LockFree)
            .with_time_scale(std::time::Duration::ZERO)
    });
    for dag in wl.dags() {
        let report = pool.run(&dag).expect("certified v2 run");
        assert_eq!(report.executed_nodes, dag.node_count());
        // The certified concurrency floor is engine-independent.
        assert!(report.min_available_workers >= certified_figure1::L_BAR);
    }
}

#[test]
fn out_dir_module_agrees_with_generate_string() {
    // The module included above (written by build.rs) and a fresh
    // library-level generation must agree — build.rs adds nothing.
    let fresh = Codegen::new("workloads/figure1.rtp", 3)
        .generate_string()
        .unwrap();
    let built = fs::read_to_string(concat!(env!("OUT_DIR"), "/certified_figure1.rs")).unwrap();
    assert_eq!(fresh, built);
}
