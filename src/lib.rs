//! # rtpool
//!
//! Facade crate re-exporting the full `rtpool` workspace: modeling,
//! deadlock analysis, schedulability analysis, synthetic generation,
//! simulation, and native execution of parallel real-time tasks
//! implemented with thread pools, reproducing Casini, Biondi, Buttazzo,
//! *"Analyzing Parallel Real-Time Tasks Implemented with Thread Pools"*,
//! DAC 2019.
//!
//! See the individual crates for details:
//!
//! * [`graph`] — the typed DAG substrate;
//! * [`core`] — concurrency bounds, deadlock lemmas, Algorithm 1, and
//!   response-time analyses;
//! * [`gen`] — synthetic task-set generation (Section 5);
//! * [`sim`] — deterministic discrete-event simulator of the execution
//!   model;
//! * [`exec`] — a real condvar-based thread pool exhibiting the paper's
//!   Figure 1 phenomena;
//! * [`lint`] — `rtlint`, span-aware static-analysis diagnostics for
//!   `.rtp` workloads and pool configurations;
//! * [`trace`] — the unified trace-event schema, metrics, analysis, and
//!   exporters shared by the simulator and the native pool.

#![forbid(unsafe_code)]

pub use rtpool_core as core;
pub use rtpool_exec as exec;
pub use rtpool_gen as gen;
pub use rtpool_graph as graph;
pub use rtpool_lint as lint;
pub use rtpool_sim as sim;
pub use rtpool_trace as trace;
