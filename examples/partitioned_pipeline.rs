//! Partitioned scheduling end-to-end: generate a random task set,
//! partition it with Algorithm 1 and with blocking-oblivious worst-fit,
//! analyze both, and validate the verdicts against the discrete-event
//! simulator (including the deadlock that worst-fit can introduce).
//!
//! ```text
//! cargo run --release --example partitioned_pipeline [seed]
//! ```

use rand::SeedableRng;
use rtpool::core::analysis::partitioned::{partition_and_analyze, PartitionStrategy};
use rtpool::core::{deadlock, ConcurrencyAnalysis, TaskId};
use rtpool::gen::{DagGenConfig, TaskSetConfig};
use rtpool::sim::{SchedulingPolicy, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(2024);
    let m = 4;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let set = TaskSetConfig::new(3, 1.0, DagGenConfig::default()).generate(&mut rng)?;

    println!("task set (seed {seed}, m = {m}):");
    for (id, task) in set.iter() {
        let ca = ConcurrencyAnalysis::new(task.dag());
        println!(
            "  {id}: |V| = {}, vol = {}, len = {}, T = {}, b̄ = {}, l̄ = {}",
            task.dag().node_count(),
            task.volume(),
            task.critical_path_length(),
            task.period(),
            ca.max_delay_count(),
            ca.concurrency_lower_bound(m),
        );
    }

    for strategy in [PartitionStrategy::WorstFit, PartitionStrategy::Algorithm1] {
        println!("\n== {strategy:?} ==");
        let (result, mappings) = partition_and_analyze(&set, m, strategy);
        for (id, task) in set.iter() {
            print!(
                "  {id}: analysis = {:?}",
                result.verdict(id).response_time()
            );
            match &mappings[id.index()] {
                None => println!(" (partitioning failed)"),
                Some(mapping) => {
                    let ca = ConcurrencyAnalysis::new(task.dag());
                    let verdict = deadlock::check_partitioned(&ca, m, mapping);
                    println!(
                        ", loads = {:?}, deadlock-free = {}",
                        mapping.loads(task.dag()),
                        verdict.is_deadlock_free()
                    );
                }
            }
        }
        // Validate with the simulator when every task was partitioned.
        if mappings.iter().all(Option::is_some) {
            let maps: Vec<_> = mappings.into_iter().map(Option::unwrap).collect();
            let horizon = set.iter().map(|(_, t)| t.period()).max().unwrap() * 3;
            let out = SimConfig::periodic(SchedulingPolicy::Partitioned, m, horizon)
                .with_mappings(maps)
                .run(&set)?;
            for (i, t) in out.tasks().iter().enumerate() {
                let bound = result.verdict(TaskId(i)).response_time();
                println!(
                    "  sim {i}: max response = {:?} (bound {:?}), misses = {}, stall = {}",
                    t.max_response,
                    bound,
                    t.deadline_misses,
                    t.stall.is_some()
                );
            }
        }
    }
    Ok(())
}
