//! Quickstart: model the paper's Figure 1(a) task, analyze it, and run
//! it on a real condvar-based thread pool.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rtpool::core::analysis::global::{self, ConcurrencyModel};
use rtpool::core::{deadlock, ConcurrencyAnalysis, Task, TaskSet};
use rtpool::exec::{PoolConfig, QueueDiscipline, ThreadPool};
use rtpool::graph::{DagBuilder, DotOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Model: v1 forks {v2, v3, v4}, blocks until they finish, v5 runs.
    let mut b = DagBuilder::new();
    let v1 = b.add_node(10);
    let v2 = b.add_node(20);
    let v3 = b.add_node(30);
    let v4 = b.add_node(20);
    let v5 = b.add_node(10);
    for c in [v2, v3, v4] {
        b.add_edge(v1, c)?;
        b.add_edge(c, v5)?;
    }
    b.blocking_pair(v1, v5)?; // v1 becomes BF, v5 BJ, children BC
    let dag = b.build()?;

    println!("Figure 1(a) task graph:");
    println!("{}", dag.to_dot(&DotOptions::new().graph_name("fig1a")));
    println!(
        "volume = {}, critical path = {}",
        dag.volume(),
        dag.critical_path_length()
    );

    // --- Concurrency bounds (Section 3.1).
    let ca = ConcurrencyAnalysis::new(&dag);
    let m = 4;
    println!(
        "b̄ = {}, l̄({m}) = {} (exact max suspended forks: {})",
        ca.max_delay_count(),
        ca.concurrency_lower_bound(m),
        ca.max_suspended_forks().len(),
    );
    println!(
        "deadlock check on {m} threads: {:?}",
        deadlock::check_global(&dag, m)
    );

    // --- Schedulability (Section 4.1): baseline vs limited concurrency.
    let set = TaskSet::new(vec![Task::with_implicit_deadline(dag.clone(), 200)?]);
    for model in [ConcurrencyModel::Full, ConcurrencyModel::Limited] {
        let result = global::analyze(&set, m, model);
        println!(
            "{model:?} analysis: schedulable = {}, R = {:?}",
            result.is_schedulable(),
            result.verdicts()[0].response_time()
        );
    }

    // --- Execute on a real thread pool with condition-variable barriers.
    let mut pool = ThreadPool::new(PoolConfig::new(m, QueueDiscipline::GlobalFifo));
    let report = pool.run(&dag)?;
    println!(
        "executed {} nodes in {:.2?}; min available workers = {}",
        report.executed_nodes, report.makespan, report.min_available_workers
    );
    Ok(())
}
