//! The sensor pipeline of `workloads/pipeline.rtp`, run through the
//! **compile-time certification** path: `build.rs` linted the workload
//! with `rtlint --deny warnings --m 6` and emitted the typed module
//! included below — the const task tables plus a zero-sized
//! `DeadlockFree<6, 1>` proof token whose `const` evaluation checked the
//! paper's Lemma 1 floor `m ≥ b̄ + 1`. `ThreadPool::new_static` accepts
//! only such configs, so this binary *cannot* express the Figure 1
//! deadlock: lowering the `m` in build.rs to 1 (or breaking the workload)
//! fails `cargo build`, not the nightly run.
//!
//! ```text
//! cargo run --example certified_pipeline
//! ```

use std::time::Duration;

use rtpool_exec::{Engine, ThreadPool};

#[allow(dead_code)]
mod certified_pipeline {
    include!(concat!(env!("OUT_DIR"), "/certified_pipeline.rs"));
}
use certified_pipeline as wl;

fn main() {
    println!("== Compile-time certificate ==");
    println!("  source : {}", wl::SOURCE);
    println!(
        "  pool   : m = {} workers (b\u{304} = {}, guaranteed floor l\u{304} = {})",
        wl::M,
        wl::B_BAR,
        wl::L_BAR
    );
    println!(
        "  proof  : DeadlockFree<{}, {}> — checked during `cargo build`",
        wl::PROOF.m(),
        wl::PROOF.b_bar()
    );

    // Infallible by construction: no `m` to get wrong, no lint to re-run.
    let mut pool = ThreadPool::new_static_with(&wl::CONFIG, |c| {
        c.with_time_scale(Duration::from_micros(100))
    });

    println!(
        "\n== Executing the certified tasks on {} real threads ==",
        pool.workers()
    );
    for (i, dag) in wl::CONFIG.dags().iter().enumerate() {
        let report = pool
            .run(dag)
            .expect("a certified workload cannot stall on its certified pool");
        println!(
            "  \u{3c4}{i}: {} nodes, makespan {:?}, min available workers {} (certified \u{2265} {})",
            report.executed_nodes,
            report.makespan,
            report.min_available_workers,
            wl::L_BAR
        );
        assert!(report.min_available_workers >= wl::L_BAR);
    }

    // The certificate is engine-independent (the Lemma 1 floor depends
    // on m and b̄ only), so the same config also runs on the lock-free
    // v2 dispatch engine.
    let mut pool_v2 = ThreadPool::new_static_with(&wl::CONFIG, |c| {
        c.with_engine(Engine::V2LockFree)
            .with_time_scale(Duration::from_micros(100))
    });
    println!("\n== Same certificate on Engine::V2LockFree ==");
    for (i, dag) in wl::CONFIG.dags().iter().enumerate() {
        let report = pool_v2
            .run(dag)
            .expect("a certified workload cannot stall on its certified pool");
        println!(
            "  \u{3c4}{i}: {} nodes, min available workers {} (certified \u{2265} {})",
            report.executed_nodes,
            report.min_available_workers,
            wl::L_BAR
        );
        assert!(report.min_available_workers >= wl::L_BAR);
    }

    // The typed node handles let application code refer to pipeline
    // stages without stringly-typed lookups.
    println!(
        "\n  capture stage: node `{}` (wcet {}) forks into {} DMA branches",
        wl::task0::NODES[wl::task0::FORK as usize].name,
        wl::task0::NODES[wl::task0::FORK as usize].wcet,
        wl::task0::EDGES
            .iter()
            .filter(|(from, _)| *from == wl::task0::FORK)
            .count()
    );
    println!("\nCertified pipeline ran to completion.");
}
