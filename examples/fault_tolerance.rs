//! Fault injection and graceful degradation, end to end.
//!
//! Three acts on the paper's workloads:
//!
//! 1. a node body panics — the pool isolates it, reports a typed error,
//!    and keeps serving jobs;
//! 2. the Figure 1(c) two-replica deadlock is flagged pre-run by the
//!    `rtlint` config pass (`lint::lint_config`) and resolved by adopting
//!    its suggested `GrowPool` reserve;
//! 3. an injected worker suspension stalls a job, and `RetryWithBackoff`
//!    re-runs it to completion;
//! 4. the *compile-time certified* Figure 1 workload (typed module
//!    emitted by `rtpool-codegen` from `workloads/figure1.rtp`, proof
//!    token `DeadlockFree<3, 2>`) survives a chaos `FaultPlan`: the
//!    certificate pins the deadlock-free pool size, so even under WCET
//!    jitter and delayed wakeups every run completes.
//!
//! Run with: `cargo run --example fault_tolerance`

use std::time::Duration;

use rtpool::core::sizing;
use rtpool::exec::{ExecError, FaultPlan, PoolConfig, QueueDiscipline, RecoveryPolicy, ThreadPool};
use rtpool::graph::{Dag, DagBuilder};
use rtpool::lint;

#[allow(dead_code)]
mod certified_figure1 {
    include!(concat!(env!("OUT_DIR"), "/certified_figure1.rs"));
}

fn figure_1c() -> Result<Dag, Box<dyn std::error::Error>> {
    let mut b = DagBuilder::new();
    let src = b.add_node(1);
    let snk = b.add_node(1);
    for _ in 0..2 {
        let (f, j) = b.fork_join(1, &[1, 1, 1], 1, true)?;
        b.add_edge(src, f)?;
        b.add_edge(j, snk)?;
    }
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Silence the default panic hook for the injected worker panic below.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("rtpool-"));
        if !worker {
            default_hook(info);
        }
    }));

    // Act 1: panic isolation. Node 2 (a fork child) always panics.
    let mut b = DagBuilder::new();
    b.fork_join(1, &[2, 2], 1, true)?;
    let dag = b.build()?;
    let config = PoolConfig::new(2, QueueDiscipline::GlobalFifo)
        .with_time_scale(Duration::from_micros(100))
        .with_faults(FaultPlan::seeded(42).panic_on(2));
    let mut pool = ThreadPool::new(config);
    match pool.run(&dag) {
        Err(ExecError::NodePanicked { node, message }) => {
            println!("[1] node v{node} panicked (\"{message}\") — job aborted, pool intact");
        }
        other => println!("[1] unexpected outcome: {other:?}"),
    }
    let mut tiny = DagBuilder::new();
    tiny.add_node(1);
    let report = pool.run(&tiny.build()?)?;
    println!(
        "[1] same pool then ran a clean job: {} node(s), {} attempt(s)\n",
        report.executed_nodes, report.attempts
    );

    // Act 2: the Figure 1(c) deadlock, caught pre-run by the lint config
    // pass (rule RT302), then recovered by adopting its suggested reserve.
    let dag = figure_1c()?;
    let workers = 2;
    let config = PoolConfig::new(workers, QueueDiscipline::GlobalFifo)
        .with_time_scale(Duration::from_micros(100));
    for d in lint::lint_config(&config, &dag) {
        println!("[2] rtlint: {}[{}]: {}", d.severity, d.code, d.message);
        if let Some(help) = &d.suggestion {
            println!("[2]         help: {help}");
        }
    }
    let reserve = sizing::reserve_for(&dag, workers);
    let config = config.with_recovery(RecoveryPolicy::GrowPool { reserve });
    assert!(
        lint::lint_config(&config, &dag).is_empty(),
        "the suggested reserve must satisfy the linter"
    );
    let mut pool = ThreadPool::new(config);
    let report = pool.run(&dag)?;
    println!(
        "[2] completed: {} nodes, grew by {} worker(s); events: {:?}\n",
        report.executed_nodes,
        report.workers_grown(),
        report.recovery_events
    );

    // Act 3: an injected suspension stalls attempt 0; retry succeeds.
    let mut b = DagBuilder::new();
    let (n0, n1, n2) = (b.add_node(1), b.add_node(1), b.add_node(1));
    b.add_edge(n0, n1)?;
    b.add_edge(n1, n2)?;
    let chain = b.build()?;
    let config = PoolConfig::new(1, QueueDiscipline::GlobalFifo)
        .with_time_scale(Duration::from_micros(100))
        .with_recovery(RecoveryPolicy::RetryWithBackoff {
            max_retries: 2,
            base_delay: Duration::from_millis(10),
        })
        .with_faults(FaultPlan::seeded(7).suspend_on_attempt(0, 1, Duration::from_millis(30)));
    let mut pool = ThreadPool::new(config);
    let report = pool.run(&chain)?;
    println!(
        "[3] chain completed after {} attempts; events: {:?}\n",
        report.attempts, report.recovery_events
    );

    // Act 4: the certified Figure 1 workload under chaos. The pool size
    // is not a runtime choice here — `build.rs` certified m = 3 against
    // b̄ = 2 and cargo checked the `DeadlockFree<3, 2>` token during
    // compilation — so injected jitter and delayed wakeups can slow the
    // job down but cannot reintroduce the inset (c) deadlock.
    let wl = &certified_figure1::CONFIG;
    println!(
        "[4] certified {}: m = {}, b\u{304} = {}, floor l\u{304} = {}",
        wl.source,
        certified_figure1::M,
        certified_figure1::B_BAR,
        certified_figure1::L_BAR
    );
    let mut pool = ThreadPool::new_static_with(wl, |c| {
        c.with_time_scale(Duration::from_micros(100)).with_faults(
            FaultPlan::seeded(1913)
                .jitter_prob(0.5, 3)
                .delay_wakeup_prob(0.25, Duration::from_millis(2)),
        )
    });
    let blocking_dag = &wl.dags()[0];
    for round in 0..3 {
        let report = pool.run(blocking_dag)?;
        println!(
            "[4]   chaos round {round}: {} nodes, makespan {:?}, min available {} (\u{2265} {})",
            report.executed_nodes,
            report.makespan,
            report.min_available_workers,
            certified_figure1::L_BAR
        );
    }
    Ok(())
}
