//! The paper's Figure 1(c): two replicas of a blocking fork–join
//! deadlock a 2-thread pool. The demo (1) predicts the deadlock with the
//! Section 3 analysis, (2) reproduces it deterministically in the
//! discrete-event simulator, (3) reproduces it on *real* condition
//! variables, and (4) shows that one more thread — or an Algorithm 1
//! partitioned mapping — removes it.
//!
//! ```text
//! cargo run --example deadlock_demo
//! ```

use rtpool::core::partition::algorithm1;
use rtpool::core::{deadlock, ConcurrencyAnalysis, Task, TaskSet};
use rtpool::exec::{ExecError, PoolConfig, QueueDiscipline, ThreadPool};
use rtpool::graph::{Dag, DagBuilder};
use rtpool::sim::{SchedulingPolicy, SimConfig};

fn two_replicas() -> Result<Dag, Box<dyn std::error::Error>> {
    let mut b = DagBuilder::new();
    let src = b.add_node(1);
    let snk = b.add_node(1);
    for _ in 0..2 {
        let (f, j) = b.fork_join(10, &[5, 5, 5], 10, true)?;
        b.add_edge(src, f)?;
        b.add_edge(j, snk)?;
    }
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dag = two_replicas()?;
    let ca = ConcurrencyAnalysis::new(&dag);

    // (1) Prediction.
    println!("== Analysis (Section 3) ==");
    for m in [2, 3] {
        println!("  m = {m}: {:?}", deadlock::check_global_with(&ca, m));
    }

    // (2) Deterministic simulation.
    println!("\n== Discrete-event simulation ==");
    let set = TaskSet::new(vec![Task::with_implicit_deadline(dag.clone(), 100_000)?]);
    for m in [2, 3] {
        let out = SimConfig::single_job(SchedulingPolicy::Global, m)
            .with_concurrency_trace()
            .run(&set)?;
        match &out.task(0).stall {
            Some(stall) => println!(
                "  m = {m}: STALLED at t = {} with {} suspended threads",
                stall.time, stall.suspended_threads
            ),
            None => println!(
                "  m = {m}: completed, response = {:?}, min l(t) = {}",
                out.task(0).max_response,
                out.task(0).min_available_concurrency
            ),
        }
    }

    // (3) Real condition variables.
    println!("\n== Native thread pool (real condvars) ==");
    for m in [2, 3] {
        let mut pool = ThreadPool::new(PoolConfig::new(m, QueueDiscipline::GlobalFifo));
        match pool.run(&dag) {
            Ok(report) => println!(
                "  m = {m}: completed {} nodes in {:.2?}",
                report.executed_nodes, report.makespan
            ),
            Err(ExecError::Stalled {
                suspended_workers,
                executed_nodes,
            }) => println!(
                "  m = {m}: DEADLOCK — {suspended_workers} workers suspended after {executed_nodes} nodes"
            ),
            Err(e) => println!("  m = {m}: unexpected error: {e}"),
        }
    }

    // (4) Partitioned rescue with Algorithm 1 (needs 3 threads here: the
    // two forks must avoid each other's and the children's threads).
    println!("\n== Partitioned scheduling with Algorithm 1 ==");
    match algorithm1(&dag, 2) {
        Ok(_) => println!("  m = 2: unexpectedly partitioned"),
        Err(e) => println!("  m = 2: Algorithm 1 fails as predicted ({e})"),
    }
    let mapping = algorithm1(&dag, 3)?;
    let mut pool = ThreadPool::new(PoolConfig::new(3, QueueDiscipline::Partitioned(mapping)));
    let report = pool.run(&dag)?;
    println!(
        "  m = 3: delay-free mapping completed {} nodes in {:.2?}",
        report.executed_nodes, report.makespan
    );
    Ok(())
}
