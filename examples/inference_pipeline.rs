//! A TensorFlow/Eigen-inspired workload: a deep-network inference task
//! whose layers are parallelized internally with *blocking* fork–joins —
//! the design the paper's introduction motivates (the Eigen thread pool
//! suspends the forking thread on a condition variable until the layer's
//! parallel shards finish).
//!
//! The example builds a synthetic N-layer pipeline with many small
//! shards per layer, computes how many pool threads are needed for
//! deadlock freedom and schedulability, and measures the blocking
//! penalty on a real thread pool.
//!
//! ```text
//! cargo run --release --example inference_pipeline
//! ```

use std::time::Duration;

use rtpool::core::analysis::global::{self, ConcurrencyModel};
use rtpool::core::{deadlock, ConcurrencyAnalysis, Task, TaskSet};
use rtpool::exec::{PoolConfig, QueueDiscipline, ThreadPool};
use rtpool::graph::{Dag, DagBuilder};

/// Builds an inference task: `layers` sequential layers; every layer is
/// a fork–join over `shards` small operations. `parallel_branches`
/// independent towers run concurrently (like parallel heads), so several
/// layer barriers can be in flight at once.
fn inference_dag(
    towers: usize,
    layers: usize,
    shards: usize,
    blocking: bool,
) -> Result<Dag, Box<dyn std::error::Error>> {
    let mut b = DagBuilder::new();
    let input = b.add_node(2); // preprocessing
    let output = b.add_node(2); // postprocessing
    for _ in 0..towers {
        let mut prev = input;
        for _ in 0..layers {
            let shard_wcets = vec![3u64; shards];
            let (fork, join) = b.fork_join(1, &shard_wcets, 1, blocking)?;
            b.add_edge(prev, fork)?;
            prev = join;
        }
        b.add_edge(prev, output)?;
    }
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (towers, layers, shards) = (3, 4, 12);
    let dag = inference_dag(towers, layers, shards, true)?;
    println!(
        "inference task: {} towers × {} layers × {} shards = {} nodes, vol {}, len {}",
        towers,
        layers,
        shards,
        dag.node_count(),
        dag.volume(),
        dag.critical_path_length()
    );

    // How many threads until the blocking barriers cannot deadlock?
    let ca = ConcurrencyAnalysis::new(&dag);
    println!(
        "b̄ = {}, exact max concurrent suspended forks = {}",
        ca.max_delay_count(),
        ca.max_suspended_forks().len()
    );
    let safe_m = (1..=16)
        .find(|&m| deadlock::check_global_with(&ca, m).is_deadlock_free())
        .expect("some pool size is safe");
    println!("smallest deadlock-free pool: m = {safe_m}");

    // Schedulability with a 25% utilization budget.
    let period = dag.volume() * 4;
    let set = TaskSet::new(vec![Task::with_implicit_deadline(dag.clone(), period)?]);
    for m in [safe_m, safe_m + 2, safe_m + 4] {
        let full = global::analyze(&set, m, ConcurrencyModel::Full);
        let limited = global::analyze(&set, m, ConcurrencyModel::Limited);
        println!(
            "m = {m}: baseline R = {:?}, limited-concurrency R = {:?}",
            full.verdicts()[0].response_time(),
            limited.verdicts()[0].response_time(),
        );
    }

    // Measured blocking penalty on real threads.
    let plain = inference_dag(towers, layers, shards, false)?;
    let m = safe_m + 1;
    let scale = Duration::from_micros(100);
    let mut pool =
        ThreadPool::new(PoolConfig::new(m, QueueDiscipline::GlobalFifo).with_time_scale(scale));
    let blocking_report = pool.run(&dag)?;
    let plain_report = pool.run(&plain)?;
    println!(
        "\nreal pool, m = {m}: blocking {:.2?} (min avail {}), non-blocking {:.2?} (min avail {})",
        blocking_report.makespan,
        blocking_report.min_available_workers,
        plain_report.makespan,
        plain_report.min_available_workers,
    );
    println!(
        "blocking slowdown: {:.1}%",
        100.0
            * (blocking_report.makespan.as_secs_f64() / plain_report.makespan.as_secs_f64() - 1.0)
    );
    Ok(())
}
