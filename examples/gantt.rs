//! Visualizing the schedule: simulate the Figure 1(a) task next to an
//! interfering higher-priority task and print the per-core Gantt chart
//! and the available-concurrency trace, under both semantics.
//!
//! ```text
//! cargo run --example gantt
//! ```

use rtpool::core::{Task, TaskSet};
use rtpool::graph::DagBuilder;
use rtpool::sim::{SchedulingPolicy, SimConfig};

fn build_set(blocking: bool) -> Result<TaskSet, Box<dyn std::error::Error>> {
    // τ0: a short high-priority chain.
    let mut b = DagBuilder::new();
    let chain: Vec<_> = (0..2).map(|_| b.add_node(4)).collect();
    b.add_chain(&chain)?;
    let hp = Task::with_implicit_deadline(b.build()?, 40)?;
    // τ1: the Figure 1(a) fork-join.
    let mut b = DagBuilder::new();
    b.fork_join(3, &[8, 8, 8], 3, blocking)?;
    let fj = Task::with_implicit_deadline(b.build()?, 120)?;
    Ok(TaskSet::new(vec![hp, fj]))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for blocking in [false, true] {
        let set = build_set(blocking)?;
        let out = SimConfig::periodic(SchedulingPolicy::Global, 2, 120)
            .with_core_trace()
            .with_concurrency_trace()
            .run(&set)?;
        println!(
            "== {} fork-join (m = 2, digits = task index, '.' = idle) ==",
            if blocking { "blocking" } else { "non-blocking" }
        );
        print!("{}", out.core_trace().expect("trace recorded").to_ascii(60));
        println!(
            "τ1 response: {:?}, min l(t) = {}",
            out.task(1).max_response,
            out.task(1).min_available_concurrency
        );
        if let Some(trace) = &out.task(1).concurrency_trace {
            let steps: Vec<String> = trace.iter().map(|(t, l)| format!("t={t}:{l}")).collect();
            println!("l(t) trace: {}", steps.join(" "));
        }
        println!();
    }
    Ok(())
}
