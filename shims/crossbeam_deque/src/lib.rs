//! Offline stand-in for the `crossbeam-deque` crate, implementing the
//! subset the repo uses: a Chase-Lev work-stealing deque
//! ([`Worker`]/[`Stealer`]) and an MPMC FIFO [`Injector`], with the
//! [`Steal`] result enum. The build environment has no registry access,
//! so — like `shims/parking_lot` — this mirrors the upstream API surface
//! closely enough that swapping in the real crate is a one-line
//! `Cargo.toml` change.
//!
//! # Deviations from upstream
//!
//! The real crate stores arbitrary `T` in growable buffers using raw
//! pointers. Staying within safe Rust (the executor crate forbids
//! `unsafe`), this shim instead:
//!
//! - constrains elements to the [`Word`] trait (`Copy` values that
//!   round-trip through a `u64`, e.g. node indices), so every slot is a
//!   plain `AtomicU64`;
//! - uses **fixed-capacity** power-of-two rings: [`Worker::new_lifo`]
//!   and [`Injector::new`] take a capacity, and `Worker::push` panics
//!   on overflow (callers size queues to the DAG, where the node count
//!   bounds all queue depths);
//! - offers only the LIFO worker flavor (the one the executor needs).
//!
//! # Correctness notes
//!
//! `Worker`/`Stealer` follow the Chase-Lev protocol with monotone `u64`
//! `top`/`bottom` counters and `SeqCst` ordering throughout. A
//! [`Stealer::steal`] reads the slot *before* its CAS on `top`; the
//! value is nevertheless valid on CAS success because a slot at index
//! `t` can only be overwritten once `bottom` reaches `t + capacity`,
//! which `Worker::push`'s overflow check forbids while `top == t`.
//!
//! [`Injector`] is a bounded Vyukov MPMC queue: each cell pairs a
//! sequence word with a data word, producers claim cells by CAS on the
//! enqueue cursor and publish by bumping the cell sequence, consumers
//! mirror that on the dequeue cursor. `push` spins (yielding) through
//! the transient "full" window where a claimed cell has not yet been
//! republished by a lagging consumer; a genuine capacity overflow —
//! unreachable when the queue is sized to the DAG — trips a bounded
//! spin and panics rather than deadlocking.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

/// Element constraint: `Copy` values that round-trip through a `u64`
/// (the shim stores every slot in an `AtomicU64`).
pub trait Word: Copy {
    /// Encodes the value into a `u64` slot.
    fn to_u64(self) -> u64;
    /// Decodes a value previously produced by [`Word::to_u64`].
    fn from_u64(raw: u64) -> Self;
}

impl Word for u64 {
    fn to_u64(self) -> u64 {
        self
    }
    fn from_u64(raw: u64) -> Self {
        raw
    }
}

impl Word for u32 {
    fn to_u64(self) -> u64 {
        u64::from(self)
    }
    fn from_u64(raw: u64) -> Self {
        raw as u32
    }
}

impl Word for usize {
    fn to_u64(self) -> u64 {
        self as u64
    }
    fn from_u64(raw: u64) -> Self {
        raw as usize
    }
}

/// Outcome of a steal attempt, mirroring `crossbeam_deque::Steal`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One element was stolen.
    Success(T),
    /// A concurrent operation interfered; the caller may retry.
    Retry,
}

impl<T> Steal<T> {
    /// True if the steal observed an empty queue.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True if an element was stolen.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// True if the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// Extracts the stolen element, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

fn next_pow2(n: usize) -> usize {
    n.max(2).next_power_of_two()
}

// ---------------------------------------------------------------------
// Chase-Lev deque: Worker (owner) + Stealer (any thread).
// ---------------------------------------------------------------------

struct ClBuffer {
    /// Monotone steal cursor; advanced only by successful CAS.
    top: AtomicU64,
    /// Monotone-ish push cursor; written only by the owner.
    bottom: AtomicU64,
    mask: u64,
    slots: Box<[AtomicU64]>,
}

impl ClBuffer {
    fn new(capacity: usize) -> Self {
        let cap = next_pow2(capacity);
        ClBuffer {
            top: AtomicU64::new(0),
            bottom: AtomicU64::new(0),
            mask: (cap as u64) - 1,
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn len(&self) -> usize {
        let t = self.top.load(SeqCst);
        let b = self.bottom.load(SeqCst);
        b.saturating_sub(t) as usize
    }
}

/// Owner endpoint of a fixed-capacity Chase-Lev deque. `push`/`pop`
/// operate LIFO at the bottom; [`Stealer`]s take FIFO from the top.
///
/// `Worker` is `Send` but deliberately not `Sync`: only one thread may
/// own it at a time (`bottom` has a single writer).
pub struct Worker<T: Word> {
    buf: Arc<ClBuffer>,
    /// `Cell` is `Send + !Sync`; it opts the owner handle out of `Sync`
    /// without runtime cost.
    _not_sync: PhantomData<std::cell::Cell<()>>,
    _elem: PhantomData<T>,
}

impl<T: Word> Worker<T> {
    /// Creates a LIFO worker deque holding at most `capacity` elements
    /// (rounded up to a power of two). Deviation from upstream: the
    /// real crate grows on demand; this shim panics on overflow.
    pub fn new_lifo(capacity: usize) -> Self {
        Worker {
            buf: Arc::new(ClBuffer::new(capacity)),
            _not_sync: PhantomData,
            _elem: PhantomData,
        }
    }

    /// Creates a stealer handle sharing this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            buf: Arc::clone(&self.buf),
            _elem: PhantomData,
        }
    }

    /// Number of elements currently in the deque (racy under
    /// concurrent steals, exact when quiescent).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if the deque is observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fixed slot capacity of the deque.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Pushes an element at the bottom.
    ///
    /// # Panics
    ///
    /// Panics if the deque is full — callers must size the deque to an
    /// upper bound on occupancy (the executor uses the DAG node count).
    pub fn push(&self, value: T) {
        let buf = &self.buf;
        let b = buf.bottom.load(SeqCst);
        let t = buf.top.load(SeqCst);
        assert!(
            b.wrapping_sub(t) < buf.capacity() as u64,
            "crossbeam-deque shim: Worker overflow (capacity {})",
            buf.capacity()
        );
        buf.slots[(b & buf.mask) as usize].store(value.to_u64(), SeqCst);
        buf.bottom.store(b + 1, SeqCst);
    }

    /// Pops the most recently pushed element (LIFO), racing stealers
    /// for the last one.
    pub fn pop(&self) -> Option<T> {
        let buf = &self.buf;
        let b = buf.bottom.load(SeqCst);
        let t = buf.top.load(SeqCst);
        // Owner-only writes keep `bottom` exact; `top` only grows, so
        // `b <= t` conclusively means empty (and guards the u64
        // decrement below).
        if b <= t {
            return None;
        }
        let b = b - 1;
        buf.bottom.store(b, SeqCst);
        let t = buf.top.load(SeqCst);
        if b > t {
            // At least two elements remained; the bottom one is ours.
            return Some(T::from_u64(buf.slots[(b & buf.mask) as usize].load(SeqCst)));
        }
        if b == t {
            // Single element: race any stealer via CAS on `top`.
            let won = buf.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok();
            buf.bottom.store(b + 1, SeqCst);
            if won {
                return Some(T::from_u64(buf.slots[(b & buf.mask) as usize].load(SeqCst)));
            }
            return None;
        }
        // Stealers emptied the deque while we decremented; restore.
        buf.bottom.store(b + 1, SeqCst);
        None
    }
}

/// Steal endpoint of a [`Worker`] deque; clone freely across threads.
pub struct Stealer<T: Word> {
    buf: Arc<ClBuffer>,
    _elem: PhantomData<T>,
}

impl<T: Word> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            buf: Arc::clone(&self.buf),
            _elem: PhantomData,
        }
    }
}

impl<T: Word> Stealer<T> {
    /// Number of elements observed in the deque (racy).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if the deque is observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Steals the oldest element (FIFO end).
    pub fn steal(&self) -> Steal<T> {
        let buf = &self.buf;
        let t = buf.top.load(SeqCst);
        let b = buf.bottom.load(SeqCst);
        if t >= b {
            return Steal::Empty;
        }
        // Reading before the CAS is safe: while `top == t`, the push
        // overflow check prevents slot `t & mask` from being reused.
        let raw = buf.slots[(t & buf.mask) as usize].load(SeqCst);
        if buf.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok() {
            Steal::Success(T::from_u64(raw))
        } else {
            Steal::Retry
        }
    }

    /// Steals roughly half the victim's elements, moving all but one
    /// into `dest` and returning that one (mirrors upstream
    /// `steal_batch_and_pop`). The batch is additionally capped by
    /// `dest`'s spare capacity.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let want = self.len().div_ceil(2);
        let spare = dest.capacity() - dest.len();
        let want = want.min(spare + 1).max(1);
        let first = match self.steal() {
            Steal::Success(v) => v,
            other => return other,
        };
        for _ in 1..want {
            match self.steal() {
                Steal::Success(v) => dest.push(v),
                _ => break,
            }
        }
        Steal::Success(first)
    }
}

// ---------------------------------------------------------------------
// Injector: bounded Vyukov MPMC FIFO.
// ---------------------------------------------------------------------

/// Shared FIFO injector queue, mirroring `crossbeam_deque::Injector`.
/// Any thread may `push`; any thread may `steal`. Deviation from
/// upstream: bounded capacity, set at construction.
pub struct Injector<T: Word> {
    seq: Box<[AtomicU64]>,
    data: Box<[AtomicU64]>,
    mask: u64,
    enqueue_pos: AtomicU64,
    dequeue_pos: AtomicU64,
    _elem: PhantomData<T>,
}

impl<T: Word> Injector<T> {
    /// Creates an injector holding at most `capacity` elements (rounded
    /// up to a power of two).
    pub fn new(capacity: usize) -> Self {
        let cap = next_pow2(capacity);
        Injector {
            seq: (0..cap).map(|i| AtomicU64::new(i as u64)).collect(),
            data: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: (cap as u64) - 1,
            enqueue_pos: AtomicU64::new(0),
            dequeue_pos: AtomicU64::new(0),
            _elem: PhantomData,
        }
    }

    fn capacity(&self) -> usize {
        self.seq.len()
    }

    /// Number of queued elements (racy snapshot).
    pub fn len(&self) -> usize {
        let e = self.enqueue_pos.load(SeqCst);
        let d = self.dequeue_pos.load(SeqCst);
        e.saturating_sub(d) as usize
    }

    /// True if the queue is observed empty.
    pub fn is_empty(&self) -> bool {
        self.enqueue_pos.load(SeqCst) == self.dequeue_pos.load(SeqCst)
    }

    /// Enqueues an element at the FIFO tail.
    ///
    /// Spins (yielding) through the transient window where the tail
    /// cell is claimed by a consumer that has not republished it yet.
    ///
    /// # Panics
    ///
    /// Panics if the spin does not resolve — a genuine overflow, which
    /// sized-to-the-DAG queues cannot reach — rather than deadlocking.
    pub fn push(&self, value: T) {
        let cap = self.capacity() as u64;
        let mut spins: u64 = 0;
        loop {
            let pos = self.enqueue_pos.load(SeqCst);
            let cell = (pos & self.mask) as usize;
            let s = self.seq[cell].load(SeqCst);
            if s == pos {
                if self
                    .enqueue_pos
                    .compare_exchange(pos, pos + 1, SeqCst, SeqCst)
                    .is_ok()
                {
                    self.data[cell].store(value.to_u64(), SeqCst);
                    self.seq[cell].store(pos + 1, SeqCst);
                    return;
                }
            } else if s < pos {
                // Cell still held by a lagging consumer (or truly full).
                spins += 1;
                assert!(
                    spins < 1 << 22,
                    "crossbeam-deque shim: Injector overflow (capacity {cap})"
                );
                std::thread::yield_now();
            }
            // s > pos: another producer claimed this cell; reload.
        }
    }

    /// Steals the oldest element (FIFO head).
    pub fn steal(&self) -> Steal<T> {
        let cap = self.capacity() as u64;
        let pos = self.dequeue_pos.load(SeqCst);
        let cell = (pos & self.mask) as usize;
        let s = self.seq[cell].load(SeqCst);
        if s == pos + 1 {
            if self
                .dequeue_pos
                .compare_exchange(pos, pos + 1, SeqCst, SeqCst)
                .is_ok()
            {
                let raw = self.data[cell].load(SeqCst);
                self.seq[cell].store(pos + cap, SeqCst);
                return Steal::Success(T::from_u64(raw));
            }
            return Steal::Retry;
        }
        if s <= pos {
            // Head cell unpublished: empty, or a producer mid-publish.
            if self.enqueue_pos.load(SeqCst) <= pos {
                return Steal::Empty;
            }
            return Steal::Retry;
        }
        // s > pos + 1: a consumer lapped our cursor read.
        Steal::Retry
    }

    /// Steals up to half the queued elements, moving all but one into
    /// `dest` and returning that one.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let want = self.len().div_ceil(2);
        let spare = dest.capacity() - dest.len();
        let want = want.min(spare + 1).max(1);
        let first = match self.steal() {
            Steal::Success(v) => v,
            other => return other,
        };
        for _ in 1..want {
            match self.steal() {
                Steal::Success(v) => dest.push(v),
                _ => break,
            }
        }
        Steal::Success(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn worker_pops_lifo() {
        let w: Worker<usize> = Worker::new_lifo(8);
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn stealer_takes_fifo() {
        let w: Worker<u32> = Worker::new_lifo(8);
        let s = w.stealer();
        for v in 0..4 {
            w.push(v);
        }
        assert_eq!(s.steal(), Steal::Success(0));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn worker_ring_reuses_slots_beyond_capacity() {
        let w: Worker<u64> = Worker::new_lifo(4);
        for round in 0..100u64 {
            w.push(round * 2);
            w.push(round * 2 + 1);
            assert_eq!(w.pop(), Some(round * 2 + 1));
            assert_eq!(w.pop(), Some(round * 2));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    #[should_panic(expected = "Worker overflow")]
    fn worker_overflow_panics() {
        let w: Worker<usize> = Worker::new_lifo(4);
        for v in 0..5 {
            w.push(v);
        }
    }

    #[test]
    fn steal_batch_takes_about_half() {
        let victim: Worker<usize> = Worker::new_lifo(16);
        let dest: Worker<usize> = Worker::new_lifo(16);
        for v in 0..8 {
            victim.push(v);
        }
        let got = victim.stealer().steal_batch_and_pop(&dest);
        assert_eq!(got, Steal::Success(0));
        // Half of 8 = 4 stolen: one returned, three moved to dest.
        assert_eq!(dest.len(), 3);
        assert_eq!(victim.len(), 4);
    }

    #[test]
    fn injector_is_fifo_and_wraps() {
        let q: Injector<usize> = Injector::new(4);
        assert!(q.is_empty());
        for round in 0..50 {
            q.push(round * 3);
            q.push(round * 3 + 1);
            q.push(round * 3 + 2);
            assert_eq!(q.len(), 3);
            assert_eq!(q.steal(), Steal::Success(round * 3));
            assert_eq!(q.steal(), Steal::Success(round * 3 + 1));
            assert_eq!(q.steal(), Steal::Success(round * 3 + 2));
        }
        assert_eq!(q.steal(), Steal::Empty);
    }

    #[test]
    fn injector_steal_batch_and_pop() {
        let q: Injector<u32> = Injector::new(16);
        let dest: Worker<u32> = Worker::new_lifo(16);
        for v in 0..6 {
            q.push(v);
        }
        assert_eq!(q.steal_batch_and_pop(&dest), Steal::Success(0));
        assert_eq!(dest.len(), 2);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn concurrent_injector_drain_loses_nothing() {
        const PRODUCERS: usize = 4;
        const PER: usize = 500;
        let q: Arc<Injector<usize>> = Arc::new(Injector::new(64));
        let seen = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    q.push(p * PER + i);
                }
            }));
        }
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let seen = Arc::clone(&seen);
            let sum = Arc::clone(&sum);
            handles.push(std::thread::spawn(move || loop {
                match q.steal() {
                    Steal::Success(v) => {
                        sum.fetch_add(v, SeqCst);
                        if seen.fetch_add(1, SeqCst) + 1 == PRODUCERS * PER {
                            return;
                        }
                    }
                    Steal::Retry => std::thread::yield_now(),
                    Steal::Empty => {
                        if seen.load(SeqCst) == PRODUCERS * PER {
                            return;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let n = PRODUCERS * PER;
        assert_eq!(seen.load(SeqCst), n);
        assert_eq!(sum.load(SeqCst), n * (n - 1) / 2);
    }

    #[test]
    fn concurrent_owner_and_stealers_keep_every_element() {
        let w: Worker<usize> = Worker::new_lifo(1024);
        let total = 1000usize;
        let popped = Arc::new(AtomicUsize::new(0));
        let stolen = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let s = w.stealer();
            let stolen = Arc::clone(&stolen);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || loop {
                match s.steal() {
                    Steal::Success(v) => {
                        stolen.fetch_add(v, SeqCst);
                    }
                    _ => {
                        if done.load(SeqCst) == 1 && s.is_empty() {
                            return;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for v in 1..=total {
            w.push(v);
            if v % 3 == 0 {
                if let Some(x) = w.pop() {
                    popped.fetch_add(x, SeqCst);
                }
            }
        }
        while let Some(x) = w.pop() {
            popped.fetch_add(x, SeqCst);
        }
        done.store(1, SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        // Drain anything stolen-but-unpopped races left behind.
        assert_eq!(
            popped.load(SeqCst) + stolen.load(SeqCst),
            total * (total + 1) / 2
        );
    }
}
