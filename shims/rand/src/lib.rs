//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand 0.8` API the repo actually uses:
//! [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. The generator is
//! deterministic (xoshiro256** seeded via splitmix64), so seeded
//! experiments stay reproducible — but streams differ from upstream
//! `StdRng`, which is fine because nothing in the repo depends on the
//! exact stream, only on determinism.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a "standard" distribution for [`Rng::gen`]:
/// floats in `[0, 1)`, integers over their full domain, fair bools.
pub trait Standard: Sized {
    /// Samples one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        f64::sample_standard(self) < p
    }

    /// Samples from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased sample from `[0, bound)` by rejection (Lemire-style).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the multiply-shift reduction unbiased.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = u128::from(v) * u128::from(bound);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone || zone == 0 {
            return hi;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*}
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, the stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..=17);
            assert!((3..=17).contains(&v));
            let w = rng.gen_range(5usize..9);
            assert!((5..9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
