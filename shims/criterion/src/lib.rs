//! Offline stand-in for `criterion`.
//!
//! The build environment cannot download crates, so this shim keeps the
//! workspace's `harness = false` bench targets compiling and runnable.
//! Instead of statistical sampling it smoke-runs every benchmark body a
//! small fixed number of iterations and prints one mean-time line per
//! benchmark — enough to catch regressions in *behavior* (panics, hangs)
//! and give a rough timing signal, not a rigorous measurement.

use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark body.
const ITERS: u32 = 3;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's conventional id shape.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver passed to bench closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = ITERS;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
        };
        f(&mut b);
        let mean = b.elapsed / b.iters.max(1);
        println!(
            "bench {}/{id}: {mean:?}/iter (shim, {} iters)",
            self.name, b.iters
        );
    }

    /// Registers and smoke-runs a benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        self.run_one(&id.to_string(), f);
    }

    /// Registers and smoke-runs a benchmark taking an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run_one(&id.to_string(), |b| f(b, input));
    }

    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Registers and smoke-runs an ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        self.benchmark_group("main").bench_function(id, f);
    }
}

/// Re-export mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = 0u32;
        group.bench_function("direct", |b| b.iter(|| ran += 1));
        let input = 5u64;
        group.bench_with_input(BenchmarkId::new("with_input", input), &input, |b, &x| {
            b.iter(|| assert_eq!(x, 5));
        });
        group.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("rta", 32).to_string(), "rta/32");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
