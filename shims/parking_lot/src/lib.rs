//! Offline stand-in for `parking_lot`, implementing the subset the repo
//! uses ([`Mutex`], [`Condvar`], [`WaitTimeoutResult`]) on top of
//! `std::sync`.
//!
//! Semantics match parking_lot where it matters for this codebase:
//!
//! * `lock()` returns the guard directly (poisoning is swallowed — a
//!   panicking worker must not poison the pool, which is exactly the
//!   behavior `rtpool-exec`'s panic isolation relies on);
//! * `Condvar::wait`/`wait_for` take the guard by `&mut`, re-acquiring
//!   the same lock before returning.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning facade over
/// [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the `std` guard in an `Option` so a [`Condvar`] can take the
/// guard out, block on the underlying condition variable, and put the
/// re-acquired guard back — all in safe code.
pub struct MutexGuard<'a, T> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<'a, T> MutexGuard<'a, T> {
    fn guard(&self) -> &sync::MutexGuard<'a, T> {
        self.inner
            .as_ref()
            .expect("guard present outside condvar wait")
    }

    fn guard_mut(&mut self) -> &mut sync::MutexGuard<'a, T> {
        self.inner
            .as_mut()
            .expect("guard present outside condvar wait")
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard()
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard_mut()
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable (facade over [`std::sync::Condvar`]).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (reacquired, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*shared;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A parking_lot mutex is unaffected by a panicking holder.
        assert_eq!(*m.lock(), 5);
    }
}
