//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`Strategy`] for integer ranges / tuples / [`collection::vec`] /
//! [`any`] / [`Just`], and [`ProptestConfig::with_cases`].
//!
//! Cases are sampled from a generator seeded deterministically per test
//! (FNV-1a of the test's module path and name), so failures reproduce
//! across runs. There is no shrinking: the failing case index and inputs
//! are reported as-is via the panic message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run-time configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The generator handed to strategies (deterministic per test).
pub type TestRng = StdRng;

/// Seeds the per-test generator from the test's full name.
#[must_use]
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A source of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (real proptest's `prop_map`;
    /// the shim has no shrinking, so this is a plain post-map).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*}
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*}
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Strategy producing values from the type's full domain (`any::<u64>()`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Returns the [`Any`] strategy for `T`.
#[must_use]
pub fn any<T: rand::Standard>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// Strategy always producing a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for vectors with sampled length and elements.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// A vector of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `prop::` facade module (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a proptest file typically imports.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Any, Just, Map,
        ProptestConfig, Strategy,
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// The shim simply ends the case successfully (no global rejection
/// accounting like real proptest).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the case
/// on failure instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed at {}:{}: {} == {} (left: {:?}, right: {:?})",
                file!(), line!(), stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed at {}:{}: {} (left: {:?}, right: {:?})",
                file!(), line!(), format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` sampling its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                    Ok(())
                })();
                if let Err(msg) = result {
                    panic!("proptest case {case}/{total}: {msg}", total = cfg.cases);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in any::<u64>()) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn vec_strategy_sizes((v, flag) in (prop::collection::vec(1u32..4, 2..6), any::<u64>())) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {} out of range", v.len());
            prop_assert_eq!(flag, flag);
            for e in v {
                prop_assert!((1..4).contains(&e));
            }
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        use rand::RngCore;
        let mut a = crate::test_rng("x::y");
        let mut b = crate::test_rng("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
