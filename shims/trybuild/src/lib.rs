//! Offline stand-in for `trybuild`.
//!
//! The real `trybuild` compiles fixture crates with cargo and compares
//! the compiler's stderr against `.stderr` goldens. This environment has
//! no registry access (and test-time cargo recursion is unwanted), so
//! this shim keeps trybuild's *harness shape* — `compile_fail` /
//! `pass` over fixture globs, `.stderr` goldens, `TRYBUILD=overwrite`
//! blessing — but delegates the "compile" step to a caller-supplied
//! **driver closure**: the caller decides what building a fixture means
//! (for this workspace: running the `rtpool-codegen` lint gate, which is
//! exactly the step that fails `cargo build` of a certified crate) and
//! returns the build outcome.
//!
//! The shim itself is dependency-free and knows nothing about the
//! workspace crates.
//!
//! ```no_run
//! let mut t = trybuild::TestCases::new(|path| {
//!     let source = std::fs::read_to_string(path).unwrap();
//!     if source.contains("bad") {
//!         trybuild::Outcome::Fail(format!("error: {} is bad", path.display()))
//!     } else {
//!         trybuild::Outcome::Pass
//!     }
//! });
//! t.compile_fail("tests/compile-fail/*.rtp");
//! t.pass("tests/compile-pass/*.rtp");
//! // Outcomes are checked when `t` drops (like the real trybuild).
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// What "building" a fixture produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The fixture builds cleanly.
    Pass,
    /// The build failed with this stderr text.
    Fail(String),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Expectation {
    Pass,
    CompileFail,
}

struct Case {
    path: PathBuf,
    expectation: Expectation,
}

/// A batch of fixture cases sharing one driver. Checked when dropped
/// (or explicitly via [`TestCases::run`]), mirroring the real trybuild.
pub struct TestCases {
    driver: Box<dyn Fn(&Path) -> Outcome>,
    cases: Vec<Case>,
    ran: bool,
}

impl TestCases {
    /// A harness whose fixtures are "built" by `driver`.
    #[must_use]
    pub fn new(driver: impl Fn(&Path) -> Outcome + 'static) -> Self {
        TestCases {
            driver: Box::new(driver),
            cases: Vec::new(),
            ran: false,
        }
    }

    /// Adds fixtures that must **fail** to build, with stderr matching
    /// the `.stderr` golden next to each fixture. `pattern` is a path
    /// with optional `*` wildcards in its file name (no recursion).
    pub fn compile_fail(&mut self, pattern: &str) {
        self.add(pattern, Expectation::CompileFail);
    }

    /// Adds fixtures that must build cleanly.
    pub fn pass(&mut self, pattern: &str) {
        self.add(pattern, Expectation::Pass);
    }

    fn add(&mut self, pattern: &str, expectation: Expectation) {
        let paths = expand(pattern);
        assert!(
            !paths.is_empty(),
            "trybuild: no fixture matches `{pattern}`"
        );
        for path in paths {
            self.cases.push(Case { path, expectation });
        }
    }

    /// Runs every queued case now, panicking with a combined report on
    /// any mismatch. Golden `.stderr` files are (re)written instead when
    /// `TRYBUILD=overwrite` or `UPDATE_GOLDEN=1` is set.
    pub fn run(&mut self) {
        if self.ran {
            return;
        }
        self.ran = true;
        let bless = std::env::var_os("TRYBUILD").is_some_and(|v| v == "overwrite")
            || std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1");
        let mut failures = String::new();
        for case in &self.cases {
            let outcome = (self.driver)(&case.path);
            let name = case.path.display();
            match (case.expectation, outcome) {
                (Expectation::Pass, Outcome::Pass) => {}
                (Expectation::Pass, Outcome::Fail(stderr)) => {
                    let _ = writeln!(
                        failures,
                        "{name}: expected to build, but failed with:\n{stderr}\n"
                    );
                }
                (Expectation::CompileFail, Outcome::Pass) => {
                    let _ = writeln!(failures, "{name}: expected to fail to build, but passed\n");
                }
                (Expectation::CompileFail, Outcome::Fail(stderr)) => {
                    let golden_path = case.path.with_extension("stderr");
                    let golden = fs::read_to_string(&golden_path).ok();
                    if golden.as_deref() == Some(stderr.as_str()) {
                        continue;
                    }
                    if bless {
                        fs::write(&golden_path, &stderr).unwrap_or_else(|e| {
                            panic!("cannot bless {}: {e}", golden_path.display())
                        });
                        eprintln!("trybuild: blessed {}", golden_path.display());
                    } else {
                        let _ = writeln!(
                            failures,
                            "{name}: stderr differs from {} \
                             (set TRYBUILD=overwrite to bless)\n--- expected\n{}\n--- actual\n{stderr}\n",
                            golden_path.display(),
                            golden.unwrap_or_else(|| "<golden file missing>".into()),
                        );
                    }
                }
            }
        }
        assert!(failures.is_empty(), "trybuild failures:\n\n{failures}");
    }
}

impl Drop for TestCases {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            self.run();
        }
    }
}

/// Expands a pattern whose final component may contain `*` wildcards
/// into sorted matching paths. Non-wildcard patterns pass through (the
/// file need not exist yet — the driver will report that).
fn expand(pattern: &str) -> Vec<PathBuf> {
    let path = Path::new(pattern);
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return vec![path.to_path_buf()];
    };
    if !name.contains('*') {
        return vec![path.to_path_buf()];
    }
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let dir = dir.unwrap_or_else(|| Path::new("."));
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| wildcard_match(name, n))
        })
        .collect();
    out.sort();
    out
}

/// `*`-only glob matching (no `?`, no character classes).
fn wildcard_match(pattern: &str, text: &str) -> bool {
    let pat: Vec<char> = pattern.chars().collect();
    let txt: Vec<char> = text.chars().collect();
    // Classic two-pointer star matcher.
    let (mut p, mut t) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while t < txt.len() {
        if p < pat.len() && (pat[p] == txt[t]) {
            p += 1;
            t += 1;
        } else if p < pat.len() && pat[p] == '*' {
            star = p;
            mark = t;
            p += 1;
        } else if star != usize::MAX {
            p = star + 1;
            mark += 1;
            t = mark;
        } else {
            return false;
        }
    }
    while p < pat.len() && pat[p] == '*' {
        p += 1;
    }
    p == pat.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_basics() {
        assert!(wildcard_match("*.rtp", "a.rtp"));
        assert!(wildcard_match("rt*_m2.rtp", "rt101_fig1_m2.rtp"));
        assert!(!wildcard_match("*.rtp", "a.stderr"));
        assert!(wildcard_match("*", "anything"));
        assert!(!wildcard_match("a*b", "acb-not"));
    }

    #[test]
    fn pass_and_fail_expectations() {
        let dir = std::env::temp_dir().join("trybuild-shim-test");
        fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.fix");
        let bad = dir.join("bad.fix");
        fs::write(&good, "ok").unwrap();
        fs::write(&bad, "boom").unwrap();
        fs::write(dir.join("bad.stderr"), "error: boom").unwrap();
        let mut t = TestCases::new(|p| {
            if fs::read_to_string(p).unwrap().contains("boom") {
                Outcome::Fail("error: boom".into())
            } else {
                Outcome::Pass
            }
        });
        t.pass(good.to_str().unwrap());
        t.compile_fail(bad.to_str().unwrap());
        t.run();
    }

    #[test]
    #[should_panic(expected = "expected to fail to build")]
    fn unexpected_pass_is_reported() {
        let dir = std::env::temp_dir().join("trybuild-shim-test2");
        fs::create_dir_all(&dir).unwrap();
        let fixture = dir.join("fine.fix");
        fs::write(&fixture, "ok").unwrap();
        let mut t = TestCases::new(|_| Outcome::Pass);
        t.compile_fail(fixture.to_str().unwrap());
        t.run();
    }
}
